"""Differentiable transforms applied to design density patterns.

Each transform maps a density tensor of shape ``(H, W)`` with values in
``[0, 1]`` to another density tensor of the same shape.  Transforms are
composable through :class:`TransformPipeline` and are differentiated by the
autograd engine, so the adjoint gradient with respect to the raw design
variables follows automatically.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor


class Transform:
    """Base class: a differentiable map from density to density."""

    def __call__(self, density: Tensor) -> Tensor:
        if not isinstance(density, Tensor):
            density = Tensor(density)
        if density.ndim != 2:
            raise ValueError(f"transforms expect a 2-D density, got shape {density.shape}")
        return self.apply(density)

    def apply(self, density: Tensor) -> Tensor:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


def _conic_kernel(radius_cells: float) -> np.ndarray:
    """Normalized conic (linear-falloff) filter kernel of the given radius."""
    size = int(np.ceil(radius_cells))
    coords = np.arange(-size, size + 1)
    xx, yy = np.meshgrid(coords, coords, indexing="ij")
    distance = np.sqrt(xx**2 + yy**2)
    kernel = np.clip(1.0 - distance / max(radius_cells, 1e-9), 0.0, None)
    total = kernel.sum()
    if total <= 0:
        raise ValueError(f"blur radius {radius_cells} produces an empty kernel")
    return kernel / total


class BlurTransform(Transform):
    """Sub-pixel smoothing / density filtering with a conic kernel.

    This is the standard topology-optimization density filter: it removes
    features smaller than roughly the blur radius and models the finite
    resolution of the lithography system.
    """

    def __init__(self, radius_cells: float = 2.0):
        if radius_cells <= 0:
            raise ValueError(f"blur radius must be positive, got {radius_cells}")
        self.radius_cells = float(radius_cells)
        self._kernel = _conic_kernel(self.radius_cells)

    def apply(self, density: Tensor) -> Tensor:
        kernel = Tensor(self._kernel[None, None])
        pad = self._kernel.shape[0] // 2
        image = density.reshape(1, 1, *density.shape)
        # Edge padding via replication is approximated by reflecting the mean
        # density: constant padding with 0.5 keeps the filter unbiased at the
        # design-region boundary.
        padded = F.pad2d(image, (pad, pad, pad, pad), value=0.5)
        blurred = F.conv2d(padded, kernel, bias=None, stride=1, padding=0)
        return blurred.reshape(*density.shape)

    def __repr__(self) -> str:  # pragma: no cover
        return f"BlurTransform(radius_cells={self.radius_cells})"


class BinarizationProjection(Transform):
    """Smoothed Heaviside projection pushing densities towards 0/1.

    Uses the standard tanh projection with sharpness ``beta`` and threshold
    ``eta``; ``beta`` is typically ramped during optimization.
    """

    def __init__(self, beta: float = 8.0, eta: float = 0.5):
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")
        if not 0.0 < eta < 1.0:
            raise ValueError(f"eta must lie in (0, 1), got {eta}")
        self.beta = float(beta)
        self.eta = float(eta)

    def apply(self, density: Tensor) -> Tensor:
        beta, eta = self.beta, self.eta
        eta_t = Tensor(np.full(density.shape, eta))
        num = Tensor(np.tanh(beta * eta)) + ((density - eta_t) * beta).tanh()
        den = np.tanh(beta * eta) + np.tanh(beta * (1.0 - eta))
        return num * (1.0 / den)

    def with_beta(self, beta: float) -> "BinarizationProjection":
        """Return a copy with a different sharpness (used by beta schedules)."""
        return BinarizationProjection(beta=beta, eta=self.eta)

    def __repr__(self) -> str:  # pragma: no cover
        return f"BinarizationProjection(beta={self.beta}, eta={self.eta})"


class SymmetryTransform(Transform):
    """Enforce mirror symmetry by averaging the pattern with its reflection.

    ``axis`` can be ``"x"`` (mirror across the vertical centre line), ``"y"``
    (horizontal centre line) or ``"both"``.
    """

    def __init__(self, axis: str = "y"):
        if axis not in ("x", "y", "both"):
            raise ValueError(f"axis must be 'x', 'y' or 'both', got {axis!r}")
        self.axis = axis

    @staticmethod
    def _flip(density: Tensor, axis: int) -> Tensor:
        flipped_data = np.flip(density.data, axis=axis).copy()

        def backward(grad, accumulate):
            accumulate(density, np.flip(np.asarray(grad), axis=axis).copy())

        return density._make_child(flipped_data, (density,), backward)

    def apply(self, density: Tensor) -> Tensor:
        result = density
        if self.axis in ("x", "both"):
            result = (result + self._flip(result, axis=0)) * 0.5
        if self.axis in ("y", "both"):
            result = (result + self._flip(result, axis=1)) * 0.5
        return result

    def __repr__(self) -> str:  # pragma: no cover
        return f"SymmetryTransform(axis={self.axis!r})"


class MinimumFeatureSizeTransform(Transform):
    """Minimum-feature-size control via blur + sharp re-projection.

    The classic open/close-style approximation: features below the blur radius
    are washed out by the filter and removed by the projection, so the output
    pattern respects (approximately) the requested minimum feature size.
    """

    def __init__(self, mfs_cells: float = 3.0, beta: float = 16.0, eta: float = 0.5):
        if mfs_cells <= 0:
            raise ValueError(f"minimum feature size must be positive, got {mfs_cells}")
        self.mfs_cells = float(mfs_cells)
        self._blur = BlurTransform(radius_cells=max(mfs_cells / 2.0, 1.0))
        self._project = BinarizationProjection(beta=beta, eta=eta)

    def apply(self, density: Tensor) -> Tensor:
        return self._project(self._blur(density))

    def __repr__(self) -> str:  # pragma: no cover
        return f"MinimumFeatureSizeTransform(mfs_cells={self.mfs_cells})"


class TransformPipeline(Transform):
    """Compose transforms left to right: ``pipeline(x) = t_n(...t_2(t_1(x)))``."""

    def __init__(self, transforms: list[Transform] | None = None):
        self.transforms = list(transforms or [])

    def apply(self, density: Tensor) -> Tensor:
        result = density
        for transform in self.transforms:
            result = transform(result)
        return result

    def append(self, transform: Transform) -> "TransformPipeline":
        self.transforms.append(transform)
        return self

    def replace(self, index: int, transform: Transform) -> None:
        """Swap one stage (used by binarization beta schedules)."""
        self.transforms[index] = transform

    def __iter__(self):
        return iter(self.transforms)

    def __len__(self) -> int:
        return len(self.transforms)

    def __repr__(self) -> str:  # pragma: no cover
        inner = ", ".join(repr(t) for t in self.transforms)
        return f"TransformPipeline([{inner}])"
