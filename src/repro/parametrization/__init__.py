"""Differentiable design parametrizations and fabrication-aware transforms.

MAPS-InvDes expresses a device design as a chain

``theta  --P-->  rho  --G-->  rho_bar``

where ``P`` maps latent design variables to a density pattern (density or
level-set parametrization) and ``G`` is a sequence of differentiable
projections (sub-pixel blur, symmetry, binarization, minimum-feature-size
control) that close the gap between the numerically optimized pattern and the
fabricated device.  All transforms operate on :class:`repro.autograd.Tensor`
so the chain rule through the whole pipeline is automatic.
"""

from repro.parametrization.parametrization import (
    DensityParametrization,
    LevelSetParametrization,
)
from repro.parametrization.transforms import (
    Transform,
    BlurTransform,
    BinarizationProjection,
    SymmetryTransform,
    MinimumFeatureSizeTransform,
    TransformPipeline,
)
from repro.parametrization.analysis import binarization_level, minimum_feature_size

__all__ = [
    "DensityParametrization",
    "LevelSetParametrization",
    "Transform",
    "BlurTransform",
    "BinarizationProjection",
    "SymmetryTransform",
    "MinimumFeatureSizeTransform",
    "TransformPipeline",
    "binarization_level",
    "minimum_feature_size",
]
