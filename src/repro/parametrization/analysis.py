"""Non-differentiable analysis utilities for design patterns.

These are measurement helpers (binarization level, minimum feature size) used
for reporting, dataset labels and fabrication-constraint verification; the
differentiable counterparts live in :mod:`repro.parametrization.transforms`.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage


def binarization_level(density: np.ndarray) -> float:
    """How binary a pattern is: 1.0 for a perfect 0/1 pattern, 0.0 for all-0.5.

    Computed as the mean of ``|2 rho - 1|``, which is the standard
    "discreteness" measure of topology optimization.
    """
    density = np.asarray(density, dtype=float)
    return float(np.mean(np.abs(2.0 * density - 1.0)))


def minimum_feature_size(density: np.ndarray, threshold: float = 0.5) -> float:
    """Approximate minimum feature size (in cells) of a binarized pattern.

    The pattern is thresholded and the smallest of the maximum inscribed-circle
    diameters over all connected components (solid and void) is returned.  A
    fully uniform pattern has a single component spanning the whole region, so
    its "feature size" is the inscribed diameter of the region itself.
    """
    density = np.asarray(density, dtype=float)
    binary = density >= threshold

    sizes: list[float] = []
    for phase in (binary, ~binary):
        if not phase.any():
            continue
        labels, count = ndimage.label(phase)
        for component in range(1, count + 1):
            mask = labels == component
            # Maximum distance to the component boundary = inscribed radius.
            distance = ndimage.distance_transform_edt(mask)
            sizes.append(2.0 * float(distance.max()))
    if not sizes:
        return float("inf")
    return float(min(sizes))


def solid_fraction(density: np.ndarray, threshold: float = 0.5) -> float:
    """Fraction of the design region filled with core material."""
    density = np.asarray(density, dtype=float)
    return float(np.mean(density >= threshold))
