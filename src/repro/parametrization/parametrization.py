"""Design-variable parametrizations: latent variables -> density in [0, 1]."""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.utils.rng import get_rng


class DensityParametrization:
    """Pixel-wise density parametrization through a sigmoid squashing.

    The latent variables ``theta`` are unbounded reals; the density is
    ``rho = sigmoid(theta / temperature)``.  A temperature around 1 keeps the
    mapping well conditioned while guaranteeing ``rho`` stays in ``(0, 1)``.
    """

    def __init__(self, shape: tuple[int, int], temperature: float = 1.0):
        if len(shape) != 2:
            raise ValueError(f"expected a 2-D design shape, got {shape}")
        if temperature <= 0:
            raise ValueError(f"temperature must be positive, got {temperature}")
        self.shape = tuple(shape)
        self.temperature = float(temperature)

    def initial_theta(self, density: np.ndarray) -> np.ndarray:
        """Latent variables whose density equals ``density`` (inverse sigmoid)."""
        density = np.clip(np.asarray(density, dtype=float), 1e-3, 1.0 - 1e-3)
        if density.shape != self.shape:
            raise ValueError(f"density shape {density.shape} does not match {self.shape}")
        return self.temperature * np.log(density / (1.0 - density))

    def __call__(self, theta: Tensor) -> Tensor:
        if not isinstance(theta, Tensor):
            theta = Tensor(theta)
        if theta.shape != self.shape:
            raise ValueError(f"theta shape {theta.shape} does not match {self.shape}")
        return (theta * (1.0 / self.temperature)).sigmoid()


class LevelSetParametrization:
    """Level-set parametrization: the density is a smoothed sign of a level-set field.

    ``rho = sigmoid(phi / width)`` where ``phi`` is the latent level-set
    function and ``width`` controls the smoothness of the interface.  Shape
    and size optimization correspond to deforming the zero contour of ``phi``.
    """

    def __init__(self, shape: tuple[int, int], interface_width: float = 0.5):
        if len(shape) != 2:
            raise ValueError(f"expected a 2-D design shape, got {shape}")
        if interface_width <= 0:
            raise ValueError(f"interface width must be positive, got {interface_width}")
        self.shape = tuple(shape)
        self.interface_width = float(interface_width)

    def initial_theta(self, density: np.ndarray) -> np.ndarray:
        """Signed level-set field reproducing ``density`` through the sigmoid."""
        density = np.clip(np.asarray(density, dtype=float), 1e-3, 1.0 - 1e-3)
        if density.shape != self.shape:
            raise ValueError(f"density shape {density.shape} does not match {self.shape}")
        return self.interface_width * np.log(density / (1.0 - density))

    def circles_init(self, num_circles: int = 4, radius_cells: float = 3.0, rng=None) -> np.ndarray:
        """A classic level-set initialization: a lattice of circular seed holes."""
        rng = get_rng(rng)
        h, w = self.shape
        yy, xx = np.meshgrid(np.arange(h), np.arange(w), indexing="ij")
        phi = np.full(self.shape, -radius_cells, dtype=float)
        for _ in range(num_circles):
            cy, cx = rng.uniform(0, h), rng.uniform(0, w)
            dist = np.sqrt((yy - cy) ** 2 + (xx - cx) ** 2)
            phi = np.maximum(phi, radius_cells - dist)
        return phi

    def __call__(self, phi: Tensor) -> Tensor:
        if not isinstance(phi, Tensor):
            phi = Tensor(phi)
        if phi.shape != self.shape:
            raise ValueError(f"phi shape {phi.shape} does not match {self.shape}")
        return (phi * (1.0 / self.interface_width)).sigmoid()
