"""Neural-surrogate integration: AI models as drop-in replacements of the solver.

* :class:`~repro.surrogate.neural_solver.NeuralEngine` — a trained model
  wrapped as a :class:`repro.fdfd.engine.SolverEngine` and registered under
  the name ``"neural"``, so the AI tier plugs in anywhere an engine is
  accepted (``Simulation(engine="neural", ...)``).
* :class:`~repro.surrogate.neural_solver.NeuralFieldBackend` — a
  :class:`repro.invdes.adjoint.FieldBackend` whose forward and adjoint fields
  come from a trained field-prediction model, enabling fully NN-driven adjoint
  inverse design (Fig. 6 of the paper).
* :mod:`repro.surrogate.gradients` — the three design-gradient computation
  methods compared in Table II: auto-diff through a black-box transmission
  regressor, auto-diff through a field predictor, and the adjoint formula on
  predicted forward + adjoint fields.
* :mod:`repro.surrogate.checkpoint` — surrogate promotion: persist a trained
  model (weights + normalization statistics + dataset fingerprint) and serve
  it anywhere by name as ``engine="neural:<checkpoint.npz>"``.
"""

from repro.surrogate.neural_solver import NeuralEngine, NeuralFieldBackend
from repro.surrogate.checkpoint import (
    CheckpointMeta,
    dataset_fingerprint,
    load_checkpoint,
    promote_to_engine,
    save_checkpoint,
)
from repro.surrogate.gradients import (
    gradient_numerical,
    gradient_fwd_adj_field,
    gradient_ad_pred_field,
    gradient_ad_black_box,
    GRADIENT_METHODS,
    compute_gradient,
)

__all__ = [
    "NeuralEngine",
    "NeuralFieldBackend",
    "CheckpointMeta",
    "dataset_fingerprint",
    "load_checkpoint",
    "promote_to_engine",
    "save_checkpoint",
    "gradient_numerical",
    "gradient_fwd_adj_field",
    "gradient_ad_pred_field",
    "gradient_ad_black_box",
    "GRADIENT_METHODS",
    "compute_gradient",
]
