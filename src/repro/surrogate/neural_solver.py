"""A trained field-prediction model wrapped as an inverse-design field backend.

The backend reproduces the paper's final case study: the numerical solver in
the adjoint loop is replaced by the neural operator for both the forward and
the adjoint solves, while all derived quantities (magnetic fields, fluxes,
modal overlaps, permittivity gradients) are computed with the same analytic
formulas as in the numerical path.

Scaling convention
------------------
Models are trained on amplitude-normalized pairs (see
:func:`repro.data.labels.standardize_input` / ``field_target``): the source is
divided by its maximum amplitude and the target field by the same amplitude
times the dataset ``field_scale``.  Because Maxwell's equations are linear in
the source, a prediction for an arbitrary source ``J`` is recovered as
``Ez = model(standardize(J)) * field_scale * max|J|``.  The adjoint equation
``A^T lam = g`` differs from the forward equation ``A e = i omega J`` only by
the factor ``i omega``, so the adjoint field is obtained by treating ``g`` as a
source and dividing the prediction by ``i omega``.
"""

from __future__ import annotations

import numpy as np

from repro.constants import omega_to_wavelength
from repro.data.labels import standardize_input
from repro.devices.base import TargetSpec
from repro.fdfd.engine import SolverEngine, register_engine
from repro.fdfd.grid import Grid
from repro.fdfd.monitors import mode_overlap, poynting_flux_through_port
from repro.fdfd.simulation import Simulation, SimulationResult
from repro.invdes.adjoint import FieldBackend
from repro.nn.module import Module
from repro.train.trainer import predict
from repro.utils.numerics import channels_to_complex


def predict_ez(
    model: Module,
    field_scale: float,
    eps_r: np.ndarray,
    source: np.ndarray,
    wavelength: float,
    dl: float,
) -> np.ndarray:
    """Predict the complex ``Ez`` produced by an arbitrary current source.

    Applies the amplitude-normalization convention described in the module
    docstring: the model sees a unit-amplitude source and its output is
    rescaled by ``field_scale * max|source|``.
    """
    source = np.asarray(source, dtype=complex)
    amplitude = float(np.max(np.abs(source)))
    if amplitude <= 0:
        return np.zeros(np.asarray(eps_r).shape, dtype=complex)
    inputs = standardize_input(eps_r, source, wavelength, dl)
    channels = predict(model, inputs)
    return channels_to_complex(channels) * float(field_scale) * amplitude


class NeuralEngine(SolverEngine):
    """A trained field-prediction model as a drop-in solver engine.

    Registers the AI surrogate as just another fidelity tier: anywhere a
    :class:`~repro.fdfd.engine.SolverEngine` is accepted
    (``Simulation(engine=...)``, ``FdfdSolver``, ``NumericalFieldBackend``),
    ``NeuralEngine(model, field_scale)`` — or the registry name ``"neural"`` —
    swaps every linear solve for a network prediction.  Because the engine
    receives the raw right-hand side ``b`` of ``A x = b`` and the model was
    trained on ``A e = i omega J``, the source handed to the network is
    ``J = b / (i omega)``; linearity makes the rescaling exact.
    """

    name = "neural"

    def __init__(self, model: Module, field_scale: float = 1.0):
        if model is None:
            raise ValueError("NeuralEngine requires a trained model (model=...)")
        self.model = model
        self.field_scale = float(field_scale)

    def solve_batch(
        self,
        grid: Grid,
        omega: float,
        eps_r: np.ndarray,
        rhs: np.ndarray,
        fingerprint: str | None = None,
        x0: np.ndarray | None = None,
    ) -> np.ndarray:
        # x0 (a Krylov warm start) is meaningless for a one-shot network
        # prediction; accepted so callers can thread guesses engine-agnostically.
        eps_r, rhs = self._check_batch(grid, eps_r, rhs)
        wavelength = omega_to_wavelength(omega)
        solutions = np.empty_like(rhs)
        for index, b in enumerate(rhs):
            source = b / (1j * omega)
            solutions[index] = predict_ez(
                self.model, self.field_scale, eps_r, source, wavelength, grid.dl
            )
        return solutions


def _neural_engine_factory(model=None, field_scale: float | None = None, checkpoint=None):
    """Registry factory for the ``"neural"`` tier.

    ``checkpoint=`` (also reachable as the registry-name suffix
    ``"neural:<path>"``) loads a promoted surrogate checkpoint — model,
    weights and normalization statistics — so the AI tier can be selected by
    *name* everywhere, including across process boundaries where live model
    instances cannot travel.
    """
    if checkpoint is not None:
        if model is not None:
            raise ValueError("pass either model or checkpoint, not both")
        if field_scale is not None:
            raise ValueError(
                "field_scale is part of the checkpoint's stored normalization; "
                "pass either field_scale or checkpoint, not both"
            )
        from repro.surrogate.checkpoint import promote_to_engine

        return promote_to_engine(checkpoint)
    return NeuralEngine(model, 1.0 if field_scale is None else field_scale)


register_engine("neural", _neural_engine_factory)


class NeuralFieldBackend(FieldBackend):
    """Forward/adjoint field computation with a trained neural operator.

    Parameters
    ----------
    model:
        A field-prediction model from :mod:`repro.train.models`.
    field_scale:
        The ``field_scale`` of the dataset the model was trained on.
    """

    def __init__(self, model: Module, field_scale: float = 1.0):
        self.model = model
        self.field_scale = float(field_scale)

    def as_engine(self) -> NeuralEngine:
        """The same surrogate wrapped as a :class:`~repro.fdfd.engine.SolverEngine`.

        Note the backend itself keeps ``engine = None`` (direct) for the
        simulations it evaluates, so derived quantities — normalization runs,
        ``e_to_h``, residuals — stay on the exact path as in the paper's case
        study; only the forward/adjoint field maps come from the network.
        """
        return NeuralEngine(self.model, self.field_scale)

    # -- low-level prediction ---------------------------------------------------------
    def predict_field(self, sim: Simulation, source: np.ndarray) -> np.ndarray:
        """Predict the complex ``Ez`` produced by an arbitrary current source."""
        return predict_ez(
            self.model, self.field_scale, sim.eps_r, source, sim.wavelength, sim.grid.dl
        )

    # -- FieldBackend interface ----------------------------------------------------------
    def forward_fields(self, sim: Simulation, spec: TargetSpec) -> SimulationResult:
        source = sim.mode_source(spec.source_port, spec.source_mode)
        ez = self.predict_field(sim, source)
        hx, hy = sim.solver.e_to_h(ez)
        norm_flux, norm_overlap = sim._normalization(spec.source_port, spec.source_mode)

        fluxes: dict[str, float] = {}
        s_params: dict[str, complex] = {}
        transmissions: dict[str, float] = {}
        for name in spec.monitored_ports():
            port = sim.ports[name]
            flux = poynting_flux_through_port(ez, hx, hy, port, sim.grid)
            fluxes[name] = float(flux)
            modes = port.solve_modes(sim.eps_r, sim.grid, sim.omega, num_modes=1)
            overlap = mode_overlap(ez, port, modes[0], sim.grid) if modes else 0.0j
            s_params[name] = complex(overlap / norm_overlap) if norm_overlap else 0.0j
            transmissions[name] = (
                float(np.clip(flux / norm_flux, 0.0, None)) if norm_flux else 0.0
            )

        return SimulationResult(
            ez=ez,
            hx=hx,
            hy=hy,
            source=source,
            wavelength=sim.wavelength,
            source_port=spec.source_port,
            source_mode=spec.source_mode,
            fluxes=fluxes,
            s_params=s_params,
            transmissions=transmissions,
            input_flux=norm_flux,
            input_overlap=norm_overlap,
        )

    def adjoint_field(
        self, sim: Simulation, spec: TargetSpec, adjoint_source: np.ndarray
    ) -> np.ndarray:
        prediction = self.predict_field(sim, adjoint_source)
        # The model solves  A e = i omega J ; the adjoint system is  A lam = g.
        return prediction / (1j * sim.omega)
