"""Design-gradient computation methods (the comparison of Table II).

Given a trained surrogate and a (device, density, spec) triple, three routes
to the design gradient are provided:

* ``ad_black_box`` — auto-differentiate a black-box transmission regressor
  with respect to its permittivity input channel,
* ``ad_pred_field`` — predict the forward field, evaluate the (differentiable)
  transmission objective on it and auto-differentiate through the network with
  respect to the permittivity input channel,
* ``fwd_adj_field`` — predict both the forward and the adjoint fields and use
  the analytic adjoint formula ``dF/deps = -2 omega^2 eps0 Re(lam * Ez)``.

``gradient_numerical`` provides the FDFD ground truth against which the three
methods are scored with cosine similarity.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.data.labels import standardize_input
from repro.devices.base import Device, TargetSpec
from repro.fdfd.simulation import Simulation
from repro.invdes.adjoint import evaluate_spec
from repro.nn.module import Module
from repro.surrogate.neural_solver import NeuralFieldBackend

# Channel layout and scaling of the standardized input.
_EPS_CHANNEL = 0
_EPS_MAX = 12.25


def _design_simulation(device: Device, density: np.ndarray, spec: TargetSpec) -> Simulation:
    eps = device.apply_state(device.eps_with_design(density), spec.state)
    return Simulation(device.grid, eps, spec.wavelength, device.geometry.ports)


def _to_design_gradient(device: Device, grad_eps: np.ndarray) -> np.ndarray:
    scale = device.geometry.eps_core - device.geometry.eps_clad
    return grad_eps[device.geometry.design_slice] * scale


def gradient_numerical(device: Device, density: np.ndarray, spec: TargetSpec) -> np.ndarray:
    """Ground-truth adjoint gradient from the FDFD solver."""
    return evaluate_spec(device, density, spec, compute_gradient=True).grad_density


def gradient_fwd_adj_field(
    model: Module, field_scale: float, device: Device, density: np.ndarray, spec: TargetSpec
) -> np.ndarray:
    """Adjoint-formula gradient from predicted forward and adjoint fields."""
    backend = NeuralFieldBackend(model, field_scale)
    return evaluate_spec(device, density, spec, backend=backend, compute_gradient=True).grad_density


def gradient_ad_pred_field(
    model: Module, field_scale: float, device: Device, density: np.ndarray, spec: TargetSpec
) -> np.ndarray:
    """Auto-diff gradient through the field predictor.

    The transmission objective (modal overlap at the target ports) is computed
    from the predicted field with autograd tensor operations, and the gradient
    is back-propagated through the network into the permittivity input channel.
    """
    sim = _design_simulation(device, density, spec)
    source = sim.mode_source(spec.source_port, spec.source_mode)
    amplitude = float(np.max(np.abs(source)))
    _, norm_overlap = sim._normalization(spec.source_port, spec.source_mode)
    norm = abs(norm_overlap) ** 2
    if norm <= 0 or amplitude <= 0:
        return np.zeros(device.design_shape)

    inputs = standardize_input(sim.eps_r, source, sim.wavelength, sim.grid.dl)
    x = Tensor(inputs[None], requires_grad=True)
    model.eval()
    prediction = model(x)  # (1, 2, H, W), amplitude-normalized field
    scale = field_scale * amplitude

    objective_value = None
    for port_name, weight in spec.port_weights.items():
        port = sim.ports[port_name]
        modes = port.solve_modes(sim.eps_r, sim.grid, sim.omega, num_modes=1)
        if not modes:
            continue
        profile = np.zeros(sim.grid.shape)
        profile[port.indices(sim.grid)] = modes[0].profile * modes[0].dl
        weight_map = Tensor(profile[None])
        overlap_re = (prediction[:, 0] * weight_map).sum() * scale
        overlap_im = (prediction[:, 1] * weight_map).sum() * scale
        term = (overlap_re * overlap_re + overlap_im * overlap_im) * (weight / norm)
        objective_value = term if objective_value is None else objective_value + term
    if objective_value is None:
        return np.zeros(device.design_shape)

    objective_value.backward()
    grad_input = x.grad[0] if x.grad is not None else np.zeros_like(inputs)
    grad_eps = grad_input[_EPS_CHANNEL] / _EPS_MAX
    return _to_design_gradient(device, grad_eps)


def gradient_ad_black_box(
    model: Module, device: Device, density: np.ndarray, spec: TargetSpec
) -> np.ndarray:
    """Auto-diff gradient through a black-box transmission regressor."""
    sim = _design_simulation(device, density, spec)
    source = sim.mode_source(spec.source_port, spec.source_mode)
    inputs = standardize_input(sim.eps_r, source, sim.wavelength, sim.grid.dl)
    x = Tensor(inputs[None], requires_grad=True)
    model.eval()
    prediction = model(x)
    prediction.sum().backward()
    grad_input = x.grad[0] if x.grad is not None else np.zeros_like(inputs)
    grad_eps = grad_input[_EPS_CHANNEL] / _EPS_MAX
    return _to_design_gradient(device, grad_eps)


GRADIENT_METHODS = ("ad_black_box", "ad_pred_field", "fwd_adj_field")


def compute_gradient(
    method: str,
    device: Device,
    density: np.ndarray,
    spec: TargetSpec,
    field_model: Module | None = None,
    field_scale: float = 1.0,
    black_box_model: Module | None = None,
) -> np.ndarray:
    """Dispatch a gradient method by name (see :data:`GRADIENT_METHODS`)."""
    key = method.lower().strip()
    if key == "numerical":
        return gradient_numerical(device, density, spec)
    if key == "fwd_adj_field":
        if field_model is None:
            raise ValueError("fwd_adj_field requires a field model")
        return gradient_fwd_adj_field(field_model, field_scale, device, density, spec)
    if key == "ad_pred_field":
        if field_model is None:
            raise ValueError("ad_pred_field requires a field model")
        return gradient_ad_pred_field(field_model, field_scale, device, density, spec)
    if key == "ad_black_box":
        if black_box_model is None:
            raise ValueError("ad_black_box requires a black-box model")
        return gradient_ad_black_box(black_box_model, device, density, spec)
    raise ValueError(f"unknown gradient method {method!r}; available: {GRADIENT_METHODS}")
