"""Surrogate checkpoints: persist a trained model and promote it to an engine.

This closes the generate→train→serve loop: a model trained by
:class:`repro.train.trainer.Trainer` is saved with everything needed to
*serve* it as a solver fidelity tier —

* the model-zoo name and constructor kwargs (so the architecture can be
  rebuilt without pickling code),
* the parameter arrays,
* the normalization statistics (the dataset ``field_scale`` the model's
  output convention depends on),
* a fingerprint of the training data (provenance: which shards/dataset the
  weights came from).

:func:`promote_to_engine` wraps the result as a
:class:`~repro.surrogate.neural_solver.NeuralEngine`, and the engine registry
accepts ``engine="neural:<checkpoint.npz>"`` anywhere an engine name is
accepted (``Simulation``, ``DatasetGenerator``, ``InverseDesignProblem``), so
a promoted surrogate is a one-line fidelity swap — including across process
boundaries, where engine *instances* cannot travel but checkpoint paths can.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.nn.module import Module
from repro.surrogate.neural_solver import NeuralEngine
from repro.train.models import make_model

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointMeta",
    "dataset_fingerprint",
    "save_checkpoint",
    "load_checkpoint",
    "promote_to_engine",
]

CHECKPOINT_FORMAT_VERSION = 1

_PARAM_PREFIX = "param::"


@dataclass
class CheckpointMeta:
    """Everything besides the weights that a served surrogate depends on."""

    model_name: str
    model_kwargs: dict = field(default_factory=dict)
    field_scale: float = 1.0
    dataset_fingerprint: str = ""
    target: str = "field"
    extras: dict = field(default_factory=dict)


def dataset_fingerprint(data) -> str:
    """Content fingerprint of a training data source.

    Works on in-memory datasets and shard loaders alike — it hashes the
    *scan-level* identity (sample count, field scale, per-sample design id /
    fidelity / transmission label), which both expose without materializing
    field arrays.  Loader and merged dataset of the same generation run
    fingerprint identically.
    """
    digest = hashlib.sha1()
    digest.update(str(len(data)).encode())
    digest.update(repr(float(data.field_scale)).encode())
    design_ids = np.asarray(data.design_id_array(), dtype=np.int64)
    digest.update(design_ids.tobytes())
    digest.update("\x00".join(str(f) for f in data.fidelity_array()).encode())
    transmissions = np.ascontiguousarray(data.transmission_array(), dtype=np.float64)
    digest.update(transmissions.tobytes())
    return digest.hexdigest()


def save_checkpoint(path: str | Path, model: Module, meta: CheckpointMeta) -> Path:
    """Atomically write a self-describing surrogate checkpoint ``.npz``.

    Parameter arrays are stored losslessly under their dotted names; the
    metadata rides in an embedded JSON header (like shard artifacts), so a
    checkpoint is a single portable file.
    """
    path = Path(path)
    arrays = {
        f"{_PARAM_PREFIX}{name}": value for name, value in model.state_dict().items()
    }
    try:
        # The kwargs must rebuild the architecture on load, so they have to
        # survive JSON *exactly* — fail here, at the save site, instead of
        # stringifying silently and failing inside make_model much later.
        # (Tuples become lists; load restores them — see _restore_kwargs.)
        model_kwargs = json.loads(json.dumps(meta.model_kwargs))
    except TypeError as exc:
        raise ValueError(
            f"model_kwargs must be JSON-serializable to round-trip through a "
            f"checkpoint; got {meta.model_kwargs!r}"
        ) from exc
    header = {
        "version": CHECKPOINT_FORMAT_VERSION,
        "model_name": meta.model_name,
        "model_kwargs": model_kwargs,
        "field_scale": meta.field_scale,
        "dataset_fingerprint": meta.dataset_fingerprint,
        "target": meta.target,
        "extras": meta.extras,
    }
    try:
        # No default= fallback: anything that cannot round-trip (numpy
        # scalars in extras, Paths, ...) fails here instead of silently
        # coming back as a string.
        encoded = json.dumps(header).encode("utf-8")
    except TypeError as exc:
        raise ValueError(
            f"checkpoint metadata must be JSON-serializable; offending "
            f"extras/fields: {meta.extras!r}"
        ) from exc
    arrays["__header__"] = np.frombuffer(encoded, dtype=np.uint8)
    tmp = path.with_name(f"{path.stem}.tmp-{os.getpid()}.npz")
    np.savez_compressed(tmp, **arrays)
    os.replace(tmp, path)
    return path


def _restore_kwargs(kwargs: dict) -> dict:
    """Undo JSON's list-ification of tuple-valued kwargs (e.g. ``modes``)."""
    return {
        key: tuple(value) if isinstance(value, list) else value
        for key, value in kwargs.items()
    }


def load_checkpoint(path: str | Path) -> tuple[Module, CheckpointMeta]:
    """Rebuild the model (in eval mode) and metadata from a checkpoint."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        if "__header__" not in archive:
            raise ValueError(f"{path} is not a surrogate checkpoint (no header)")
        header = json.loads(bytes(archive["__header__"].tobytes()).decode("utf-8"))
        if header.get("version") != CHECKPOINT_FORMAT_VERSION:
            raise ValueError(
                f"checkpoint {path} has format version {header.get('version')!r}; "
                f"expected {CHECKPOINT_FORMAT_VERSION}"
            )
        state = {
            name[len(_PARAM_PREFIX) :]: archive[name]
            for name in archive.files
            if name.startswith(_PARAM_PREFIX)
        }
    meta = CheckpointMeta(
        model_name=header["model_name"],
        model_kwargs=_restore_kwargs(dict(header.get("model_kwargs", {}))),
        field_scale=float(header.get("field_scale", 1.0)),
        dataset_fingerprint=header.get("dataset_fingerprint", ""),
        target=header.get("target", "field"),
        extras=dict(header.get("extras", {})),
    )
    model = make_model(meta.model_name, **meta.model_kwargs)
    model.load_state_dict(state)
    model.eval()
    return model, meta


def promote_to_engine(
    model: Module | str | Path, meta: CheckpointMeta | None = None
) -> NeuralEngine:
    """Promote a trained field model to a servable ``"neural"`` solver engine.

    Accepts either a checkpoint path (rebuilds model + metadata from disk) or
    a live model plus its :class:`CheckpointMeta`.  The returned engine honors
    the normalization convention (``field_scale``) the model was trained
    under and advertises ``supports_warm_start=False`` — a one-shot network
    prediction has no Krylov iteration to warm-start.

    Examples
    --------
    ::

        save_checkpoint("surrogate.npz", model, CheckpointMeta(
            model_name="fno", model_kwargs=dict(width=16, modes=(6, 6), depth=3),
            field_scale=loader.field_scale,
            dataset_fingerprint=dataset_fingerprint(loader)))
        engine = promote_to_engine("surrogate.npz")        # instance ...
        sim = device.simulation(density, engine=engine)
        # ... or by name, anywhere an engine name is accepted (works across
        # worker processes, where live instances cannot travel):
        dataset = generate_dataset(..., engine="neural:surrogate.npz", workers=4)
    """
    if isinstance(model, (str, Path)):
        model, meta = load_checkpoint(model)
    if meta is None:
        raise ValueError("promoting a live model requires its CheckpointMeta")
    if meta.target != "field":
        raise ValueError(
            f"only field-prediction models can serve as solver engines; "
            f"checkpoint target is {meta.target!r}"
        )
    return NeuralEngine(model, meta.field_scale)
