"""Async solve front-end: micro-batching of concurrent solve requests.

FDFD solves against one operator are cheapest in bulk — the direct tier
back-substitutes an entire ``(n_points, n_rhs)`` stack through one LU in a
single ``lu.solve`` call, and even the factorization itself is shared through
the :class:`~repro.fdfd.engine.FactorizationCache`.  But every call site is
synchronous: a fleet of clients querying the same foundry-PDK device each
issue their own ``solve_batch``, and on a cold cache they *race* — N threads
miss simultaneously and N identical factorizations get built (the cache
protects its bookkeeping, deliberately not the build, so one slow client
never serializes unrelated operators).

:class:`SolveService` closes the gap.  Requests are submitted (``submit`` for
a future, ``solve``/``solve_batch`` to block) into an asyncio loop running on
a background thread, grouped by ``(engine fidelity signature, grid, omega,
eps fingerprint)`` — the signature carries everything that shapes results
(tier, Krylov configuration, factor *precision*), so an fp32 ``refined``
request can never coalesce with an fp64 one, while equal-fidelity requests
coalesce even when issued through distinct engine instances — and each group
is flushed as a *single* ``solve_batch`` call once a micro-batching window
elapses or the group reaches a maximum batch size.
Under concurrent same-operator load this turns N racing factorizations into
one, and N per-request back-substitutions into one stacked one.  Coalescing
is purely an execution-order change: the direct tier's stacked solve is
column-wise bit-identical to per-request solves.

The service plugs in anywhere an engine does: ``Simulation(engine="service")``
builds a :class:`ServiceEngine` routing through the process-wide
:func:`default_solve_service`, and ``Simulation(engine=my_service)`` accepts a
service instance directly (via ``SolveService.as_engine``).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
from dataclasses import dataclass

import numpy as np

from repro.fdfd.engine import (
    SolverEngine,
    eps_fingerprint,
    register_engine,
    resolve_engine,
)
from repro.fdfd.grid import Grid

__all__ = [
    "ServiceEngine",
    "ServiceStats",
    "SolveService",
    "SolveTimeoutError",
    "default_solve_service",
]


class SolveTimeoutError(TimeoutError):
    """A solve request's deadline elapsed before its batch completed.

    Only the timed-out request's future fails — coalesced siblings in the
    same batch still complete.  ``group`` is the coalescing key the request
    belonged to: ``(engine fidelity signature, grid, omega, fingerprint)``.
    """

    def __init__(self, group: tuple, timeout: float):
        signature, grid, omega, fingerprint = group
        super().__init__(
            f"solve request timed out after {timeout:.3g}s "
            f"(omega={omega:.6g}, fingerprint={str(fingerprint)[:12]}, "
            f"signature={signature})"
        )
        self.group = group
        self.timeout = timeout


@dataclass
class ServiceStats:
    """What a :class:`SolveService` coalesced, for benchmarks and tests."""

    #: Requests accepted (one ``submit``/``solve``/``solve_batch`` each).
    requests: int = 0
    #: Total right-hand sides across all requests.
    rhs_in: int = 0
    #: ``solve_batch`` calls issued to the backing engine.
    batches: int = 0
    #: Right-hand sides that rode along in a batch started by an earlier
    #: request (``rhs_in - batches``-ish view: the coalescing win).
    coalesced_rhs: int = 0
    #: Largest batch flushed so far.
    max_batch_seen: int = 0
    #: Batches flushed early because they reached ``max_batch``.
    full_flushes: int = 0
    #: Requests failed with :class:`SolveTimeoutError`.
    timeouts: int = 0
    #: Batch re-dispatches after an engine failure (``max_retries``).
    retries: int = 0

    def as_dict(self) -> dict:
        return {k: int(v) for k, v in self.__dict__.items()}


class _PendingBatch:
    """One open coalescing group: requests awaiting a flush."""

    __slots__ = (
        "grid",
        "omega",
        "eps_r",
        "fingerprint",
        "engine",
        "parts",
        "total",
        "handle",
        "attempt",
    )

    def __init__(self, grid, omega, eps_r, fingerprint, engine):
        self.grid = grid
        self.omega = omega
        self.eps_r = eps_r
        self.fingerprint = fingerprint
        self.engine = engine
        #: list of (future, rhs stack, x0 stack or None)
        self.parts: list[tuple[concurrent.futures.Future, np.ndarray, np.ndarray | None]] = []
        self.total = 0
        self.handle = None
        self.attempt = 0


class SolveService:
    """Coalescing async front-end over a :class:`SolverEngine`.

    Parameters
    ----------
    engine:
        Backing engine (name or instance) requests are served with by
        default; ``submit(engine=...)`` overrides per request (names are
        resolved once and reused, so same-named requests share state).
    window:
        Micro-batching window in seconds: a group flushes when its *first*
        request is this old.  Longer windows coalesce more at the cost of
        added per-request latency; ``0`` still coalesces whatever arrives in
        one event-loop turn.
    max_batch:
        A group reaching this many right-hand sides flushes immediately.  A
        single oversized request is never split — the limit only stops
        coalescing from growing batches without bound.
    workers:
        Executor threads running the flushed solves (default 1: solves
        serialize, which maximizes coalescing of whatever arrives while one
        batch is in flight — the right default for the factorize-once
        workloads the service exists for).
    timeout:
        Default per-request deadline in seconds (off by default): a request
        whose batch has not completed in time fails with
        :class:`SolveTimeoutError` — *only* that request's future; coalesced
        siblings still complete.  ``submit(timeout=...)`` overrides per
        request.
    max_retries:
        Re-dispatches allowed when the backing engine raises from a flushed
        batch.  Requests that already settled (e.g. timed out) are dropped
        from the retried batch; the rest get another chance before the error
        is forwarded to every remaining waiter.

    The event loop lives on a daemon thread and starts lazily on first use;
    :meth:`close` (or using the service as a context manager) tears it down.
    """

    def __init__(
        self,
        engine: SolverEngine | str | None = None,
        window: float = 0.002,
        max_batch: int = 64,
        workers: int = 1,
        timeout: float | None = None,
        max_retries: int = 0,
    ):
        if window < 0:
            raise ValueError(f"window must be non-negative, got {window}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be at least 1, got {max_batch}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive (or None), got {timeout}")
        self.window = float(window)
        self.max_batch = int(max_batch)
        self.timeout = timeout
        self.max_retries = max(int(max_retries), 0)
        self.engine = resolve_engine(engine)
        self.stats = ServiceStats()
        self._engines: dict[str, SolverEngine] = {}
        self._pending: dict[tuple, _PendingBatch] = {}
        #: Every unresolved request future, registered *before* its enqueue
        #: callback is posted to the loop.  close() sweeps this last, so a
        #: submit racing close can never orphan a future (the callback may
        #: land after the loop drained, or never run at all).
        self._inflight: set[concurrent.futures.Future] = set()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=max(1, int(workers)), thread_name_prefix="solve-service"
        )
        self._lifecycle = threading.Lock()
        self._closed = False

    # -- lifecycle ---------------------------------------------------------------
    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        with self._lifecycle:
            if self._closed:
                raise RuntimeError("SolveService is closed")
            if self._loop is None:
                loop = asyncio.new_event_loop()
                started = threading.Event()

                def run():
                    asyncio.set_event_loop(loop)
                    loop.call_soon(started.set)
                    loop.run_forever()

                self._thread = threading.Thread(
                    target=run, name="solve-service-loop", daemon=True
                )
                self._thread.start()
                started.wait()
                self._loop = loop
            return self._loop

    def close(self) -> None:
        """Stop the loop and release the executor threads; idempotent.

        Every pending future resolves promptly — requests already flushed to
        the executor run to completion (their futures complete normally),
        everything still queued in a micro-batching window is cancelled
        (:class:`concurrent.futures.CancelledError`), and a ``submit`` racing
        ``close`` either raises or has its future cancelled.  No client
        thread blocked on ``.result()`` is ever left hanging.
        """
        with self._lifecycle:
            if self._closed:
                return
            self._closed = True
            loop, self._loop = self._loop, None
        if loop is not None:
            def drain():
                for batch in self._pending.values():
                    if batch.handle is not None:
                        batch.handle.cancel()
                    for future, _, _ in batch.parts:
                        future.cancel()
                self._pending.clear()
                loop.stop()

            loop.call_soon_threadsafe(drain)
            if self._thread is not None:
                self._thread.join(timeout=5.0)
            loop.close()
        # Wait for in-flight solves so their futures complete rather than
        # dangle behind a dead executor.
        self._executor.shutdown(wait=True)
        # A submit racing close can post its enqueue callback into the same
        # ready cycle as the drain — after it — recreating a _pending entry
        # whose flush timer will never fire on the stopped loop; or the
        # callback may never run at all.  The loop thread is gone, so sweep
        # both places and cancel whatever is left.
        for batch in self._pending.values():
            if batch.handle is not None:
                batch.handle.cancel()
            for future, _, _ in batch.parts:
                future.cancel()
        self._pending.clear()
        for future in list(self._inflight):
            future.cancel()

    def __enter__(self) -> "SolveService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- request entry -----------------------------------------------------------
    def _resolve(self, engine) -> tuple[str, SolverEngine]:
        if engine is None:
            return ("default", self.engine)
        if isinstance(engine, str):
            resolved = self._engines.get(engine)
            if resolved is None:
                self._engines[engine] = resolved = resolve_engine(engine)
            return (engine, resolved)
        return (f"instance-{id(engine)}", resolve_engine(engine))

    def submit(
        self,
        grid: Grid,
        omega: float,
        eps_r: np.ndarray,
        rhs: np.ndarray,
        fingerprint: str | None = None,
        x0: np.ndarray | None = None,
        engine: SolverEngine | str | None = None,
        timeout: float | None = None,
    ) -> concurrent.futures.Future:
        """Enqueue a solve; the future resolves to the solution stack.

        ``rhs`` may be a single ``(nx, ny)`` right-hand side or a stack
        ``(n, nx, ny)``; the future's result has the same shape.  Requests
        sharing ``(engine fidelity signature, grid, omega, fingerprint)``
        that arrive within the micro-batching window are solved in one
        engine call — the signature includes the factor precision, so
        mixed-precision tiers group strictly by dtype.

        ``timeout`` (seconds, default: the service-level setting) bounds how
        long this request may wait end to end; on expiry its future fails
        with :class:`SolveTimeoutError` while batch siblings are unaffected.
        """
        eps_r = np.asarray(eps_r)
        rhs = np.asarray(rhs, dtype=complex)
        single = rhs.ndim == 2
        stack = rhs[None] if single else rhs
        if stack.ndim != 3 or stack.shape[1:] != grid.shape:
            raise ValueError(
                f"rhs must be (nx, ny) or (n, {grid.nx}, {grid.ny}); got {rhs.shape}"
            )
        if fingerprint is None:
            fingerprint = eps_fingerprint(eps_r)
        if x0 is not None:
            x0 = np.asarray(x0, dtype=complex)
            x0 = x0[None] if x0.ndim == 2 else x0
            if x0.shape != stack.shape:
                raise ValueError(f"x0 shape {x0.shape} does not match rhs {stack.shape}")
        _, resolved = self._resolve(engine)
        if timeout is None:
            timeout = self.timeout

        inner: concurrent.futures.Future = concurrent.futures.Future()
        loop = self._ensure_loop()
        self._inflight.add(inner)
        inner.add_done_callback(self._inflight.discard)
        try:
            loop.call_soon_threadsafe(
                self._enqueue,
                (resolved.fidelity_signature, grid, float(omega), fingerprint),
                resolved,
                eps_r,
                stack,
                x0,
                inner,
                timeout,
            )
        except RuntimeError:
            # The loop closed under us (close() racing this submit): the
            # callback was never queued, so resolve the future here.
            inner.cancel()
            raise
        if not single:
            return inner
        outer: concurrent.futures.Future = concurrent.futures.Future()

        def unwrap(done: concurrent.futures.Future) -> None:
            if done.cancelled():
                outer.cancel()
                return
            error = done.exception()
            if error is not None:
                outer.set_exception(error)
            else:
                outer.set_result(done.result()[0])

        inner.add_done_callback(unwrap)
        return outer

    def solve(
        self, grid, omega, eps_r, rhs, fingerprint=None, x0=None, engine=None, timeout=None
    ):
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(
            grid,
            omega,
            eps_r,
            rhs,
            fingerprint=fingerprint,
            x0=x0,
            engine=engine,
            timeout=timeout,
        ).result()

    # Engine-shaped entry: lets the service sit anywhere a SolverEngine does.
    solve_batch = solve

    def as_engine(self) -> "ServiceEngine":
        """This service as a :class:`SolverEngine` (``Simulation(engine=service)``)."""
        return ServiceEngine(service=self)

    # -- loop-side grouping ------------------------------------------------------
    def _enqueue(self, key, engine, eps_r, stack, x0, future, timeout) -> None:
        # Runs on the loop thread: single-threaded access to self._pending.
        if self._closed:
            # This callback landed in the same ready cycle as (but after)
            # close()'s drain: the flush timer created below would never
            # fire on the stopped loop, so resolve the future immediately.
            future.cancel()
            return
        self.stats.requests += 1
        self.stats.rhs_in += stack.shape[0]
        batch = self._pending.get(key)
        if batch is None:
            grid, omega, fingerprint = key[1], key[2], key[3]
            batch = _PendingBatch(grid, omega, eps_r, fingerprint, engine)
            self._pending[key] = batch
            batch.handle = asyncio.get_running_loop().call_later(
                self.window, self._flush, key
            )
        else:
            self.stats.coalesced_rhs += stack.shape[0]
        batch.parts.append((future, stack, x0))
        batch.total += stack.shape[0]
        if timeout is not None:
            # Timers die with the loop; close() then cancels via _inflight,
            # so an expiring request never outlives the service silently.
            asyncio.get_running_loop().call_later(
                timeout, self._expire, future, key, timeout
            )
        if batch.total >= self.max_batch:
            self.stats.full_flushes += 1
            self._flush(key)

    def _expire(self, future, key, timeout) -> None:
        # Runs on the loop thread.  Fails exactly one request: its batch —
        # and every coalesced sibling riding in it — keeps running, and the
        # solver-side loops skip futures that are already done.
        if future.done():
            return
        self.stats.timeouts += 1
        try:
            future.set_exception(SolveTimeoutError(key, timeout))
        except concurrent.futures.InvalidStateError:  # pragma: no cover - lost race
            pass

    def _flush(self, key) -> None:
        batch = self._pending.pop(key, None)
        if batch is None:  # already flushed by the max_batch trigger
            return
        if batch.handle is not None:
            batch.handle.cancel()
        self._dispatch(batch)

    def _dispatch(self, batch: _PendingBatch) -> None:
        # Runs on the loop thread (first flush and every retry re-dispatch).
        try:
            asyncio.get_running_loop().run_in_executor(
                self._executor, self._solve_flushed, batch
            )
        except RuntimeError:
            # Executor already shut down (close() racing a timer flush):
            # the batch cannot run, so its waiters must not hang.
            for future, _, _ in batch.parts:
                future.cancel()

    def _requeue(self, batch: _PendingBatch) -> None:
        # Runs on the loop thread: retry a failed batch minus the requests
        # that already settled (timed out / cancelled) in the meantime.
        batch.parts = [part for part in batch.parts if not part[0].done()]
        batch.total = sum(stack.shape[0] for _, stack, _ in batch.parts)
        if not batch.parts:
            return
        if self._closed:
            for future, _, _ in batch.parts:
                future.cancel()
            return
        self._dispatch(batch)

    # -- executor-side solving ---------------------------------------------------
    def _solve_flushed(self, batch: _PendingBatch) -> None:
        try:
            rhs = np.concatenate([stack for _, stack, _ in batch.parts], axis=0)
            x0 = None
            if any(part_x0 is not None for _, _, part_x0 in batch.parts):
                x0 = np.zeros_like(rhs)
                offset = 0
                for _, stack, part_x0 in batch.parts:
                    if part_x0 is not None:
                        x0[offset : offset + stack.shape[0]] = part_x0
                    offset += stack.shape[0]
            self.stats.batches += 1
            self.stats.max_batch_seen = max(self.stats.max_batch_seen, rhs.shape[0])
            solutions = batch.engine.solve_batch(
                batch.grid,
                batch.omega,
                batch.eps_r,
                rhs,
                fingerprint=batch.fingerprint,
                x0=x0,
            )
        except BaseException as error:  # noqa: BLE001 - forwarded to every waiter
            if (
                batch.attempt < self.max_retries
                and not isinstance(
                    error, (KeyboardInterrupt, SystemExit, concurrent.futures.CancelledError)
                )
                and any(not part[0].done() for part in batch.parts)
            ):
                batch.attempt += 1
                self.stats.retries += 1
                loop = self._loop
                if loop is not None:
                    try:
                        loop.call_soon_threadsafe(self._requeue, batch)
                        return
                    except RuntimeError:  # pragma: no cover - close() raced us
                        pass
            for future, _, _ in batch.parts:
                if not future.done():
                    future.set_exception(error)
            return
        offset = 0
        for future, stack, _ in batch.parts:
            part = solutions[offset : offset + stack.shape[0]]
            offset += stack.shape[0]
            if not future.done():
                future.set_result(np.ascontiguousarray(part))


class ServiceEngine(SolverEngine):
    """A :class:`SolveService` wearing the :class:`SolverEngine` interface.

    ``Simulation(engine="service")`` (or ``FdfdSolver(engine="service")``,
    ``NumericalFieldBackend(engine="service")``, ...) routes every solve of
    that instance through the process-wide :func:`default_solve_service`, so
    independent simulations querying the same operator coalesce.  Constructing
    one with ``engine=...``/``window=...``/``max_batch=...`` spins up a
    dedicated service instead.

    Results are whatever the backing engine produces — for the default direct
    tier, bit-identical to per-request solves — so the fidelity signature
    delegates to the backing engine and cached results interchange freely with
    unserviced solves.
    """

    name = "service"

    def __init__(
        self,
        service: SolveService | None = None,
        engine: SolverEngine | str | None = None,
        window: float | None = None,
        max_batch: int | None = None,
        workers: int | None = None,
    ):
        if service is not None:
            if engine is not None or window is not None or max_batch is not None:
                raise ValueError("pass either a service or its configuration, not both")
            self.service = service
        elif engine is None and window is None and max_batch is None and workers is None:
            self.service = default_solve_service()
        else:
            self.service = SolveService(
                engine=engine,
                window=0.002 if window is None else window,
                max_batch=64 if max_batch is None else max_batch,
                workers=1 if workers is None else workers,
            )

    @property
    def supports_warm_start(self) -> bool:
        return self.service.engine.supports_warm_start

    @property
    def fidelity_signature(self) -> tuple:
        # Coalescing changes execution order, never results: share cached
        # results with the backing tier.
        return self.service.engine.fidelity_signature

    @property
    def cache(self):
        """The backing engine's factorization cache (for eviction plumbing)."""
        return getattr(self.service.engine, "cache", None)

    def solve_batch(self, grid, omega, eps_r, rhs, fingerprint=None, x0=None):
        eps_r, rhs = self._check_batch(grid, eps_r, rhs)
        return self.service.submit(
            grid, omega, eps_r, rhs, fingerprint=fingerprint, x0=x0
        ).result()


_DEFAULT_SERVICE: SolveService | None = None
_DEFAULT_SERVICE_LOCK = threading.Lock()


def default_solve_service() -> SolveService:
    """The process-wide service shared by ``engine="service"`` call sites.

    Created on first use with default settings (direct backing engine, 2 ms
    window).  Like :data:`~repro.fdfd.engine.default_factorization_cache`, it
    is what lets independent call sites coalesce without coordinating.
    """
    global _DEFAULT_SERVICE
    with _DEFAULT_SERVICE_LOCK:
        if _DEFAULT_SERVICE is None or _DEFAULT_SERVICE._closed:
            _DEFAULT_SERVICE = SolveService()
        return _DEFAULT_SERVICE


register_engine("service", ServiceEngine)
