"""Solve service & cross-process cache fabric.

This package is the serving layer of the stack (ROADMAP open item 1):

* :mod:`repro.service.cache_store` — :class:`FileFactorizationStore`, a
  cross-process store of LU factorizations persisted as memory-mapped
  artifacts.  The process-wide
  :class:`~repro.fdfd.engine.FactorizationCache` falls through to it on a
  miss, so factorizations survive process death and are shared across the
  generation worker pool (``REPRO_FACTORIZATION_STORE=<dir>`` attaches one to
  the default cache everywhere, including worker processes).
* :mod:`repro.service.solve_service` — :class:`SolveService`, an async solve
  front-end that groups concurrently-arriving requests by
  ``(grid, omega, eps fingerprint, engine)`` and coalesces their right-hand
  sides into single batched ``solve_batch`` calls; served anywhere an engine
  is accepted via :class:`ServiceEngine` (``engine="service"`` or
  ``Simulation(engine=service)``).

Importing this package registers the ``"service"`` engine tier.
"""

from repro.service.cache_store import (
    FileFactorizationStore,
    StoreStats,
    default_store_budget_bytes,
)
from repro.service.solve_service import (
    ServiceEngine,
    ServiceStats,
    SolveService,
    SolveTimeoutError,
    default_solve_service,
)

__all__ = [
    "FileFactorizationStore",
    "StoreStats",
    "default_store_budget_bytes",
    "ServiceEngine",
    "ServiceStats",
    "SolveService",
    "SolveTimeoutError",
    "default_solve_service",
]
