"""Cross-process factorization store: memory-mapped LU artifacts on disk.

The process-wide :class:`~repro.fdfd.engine.FactorizationCache` keeps
factorizations alive for the life of *one* process.  A fleet of clients (or
the generation worker pool) hitting the same foundry-PDK devices re-factorizes
identical operators in every process — the factorization is content-addressed
(``(grid, omega, eps fingerprint)``) but the cache is not shared.

:class:`FileFactorizationStore` closes that gap.  A store is a directory of
self-describing binary artifacts, one per ``(grid, omega, eps fingerprint,
tag)`` key, holding the triangular factors and permutations of a SuperLU
factorization as raw, alignment-padded buffers.  Loading memory-maps the
buffers (``np.memmap``), so

* a fresh process pays two sparse triangular solves per right-hand side
  (a few ms) instead of a full refactorization (hundreds of ms), and
* concurrent processes mapping the same artifact share one copy of the
  factors through the OS page cache — the "cache fabric".

Three properties make the store safe to share:

* **Atomic publish** — artifacts are written to a same-directory temp file
  and ``os.replace``\\ d into place, so readers never observe a partial file
  and concurrent writers of one key cannot clobber each other (last complete
  write wins; both are equivalent, the key is content-addressed).
* **Fail-soft loads** — a corrupt, truncated or version-skewed artifact is
  reported as a miss, never an error: the caller falls back to a fresh
  factorization.  Structural checks (magic, declared sizes vs file size) are
  backed by a *probe solve*: every artifact carries the solution of a
  fingerprint-seeded random right-hand side computed by the original
  factorization, and a load replays it through the reconstructed factors.
* **Publish-time self-check** — the same probe is verified before anything is
  written, so a factorization whose factors do not round-trip (e.g. a future
  SciPy that applies non-trivial equilibration scalings SuperLU does not
  expose) is declined rather than published wrong.

The store is engine-agnostic at the key level but only knows how to persist
SuperLU-like objects (``L``/``U``/``perm_r``/``perm_c`` — the ``"direct"``
and ``"recycled"`` cache tags); entries it cannot persist (e.g. the iterative
tier's ``(matrix, ilu)`` tuples) are declined, which the cache treats as
"store not applicable".  Artifacts may carry extra arrays: the recycled tier
publishes its reference permittivity alongside the LU, which is what lets a
fresh process adopt recycled references (see
:meth:`~repro.fdfd.engine.RecycledEngine` and :meth:`list_extras`).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.utils import faults

logger = logging.getLogger(__name__)

__all__ = [
    "FileFactorizationStore",
    "StoreStats",
    "StoredFactorization",
    "default_store_budget_bytes",
]

_MAGIC = b"RFSTORE1"
_FORMAT_VERSION = 1
_ALIGN = 64

#: Norm-wise relative tolerance of the probe-solve validation.  The
#: reconstruction is mathematically exact (``L @ U == Pr A Pc`` to machine
#: precision), but the Maxwell operator's conditioning amplifies
#: triangular-solve rounding: genuine artifacts reproduce the native solution
#: to ~1e-5 norm-wise on realistic devices.  Corruption, truncation or a
#: convention drift produce O(1)-or-worse errors, so 1e-3 separates the two
#: cleanly.
_PROBE_RTOL = 1e-3

#: Per-factor-dtype overrides: complex64 factors replay the probe with fp32
#: rounding (measured ~1e-6 on the equilibrated operators the refined tier
#: factors), so the corruption threshold scales accordingly.
_PROBE_RTOLS = {"complex64": 1e-2}


def _probe_rtol(dtype) -> float:
    """Probe tolerance for artifacts holding factors of ``dtype``."""
    return _PROBE_RTOLS.get(np.dtype(dtype).name, _PROBE_RTOL)


def _probe_matches(
    candidate: np.ndarray, expected: np.ndarray, rtol: float = _PROBE_RTOL
) -> bool:
    scale = float(np.linalg.norm(expected))
    if scale == 0.0 or not np.isfinite(scale):  # pragma: no cover - degenerate
        return bool(np.allclose(candidate, expected))
    return float(np.linalg.norm(np.asarray(candidate) - expected)) <= rtol * scale


def default_store_budget_bytes() -> int:
    """Disk budget of a store directory (``REPRO_FACTORIZATION_STORE_BYTES``).

    When publishing pushes the directory past the budget, the oldest artifacts
    (by mtime) are pruned best-effort.  Default 1 GiB; ``0`` disables pruning.
    """
    return int(os.environ.get("REPRO_FACTORIZATION_STORE_BYTES", str(1 << 30)))


@dataclass
class StoreStats:
    """What a :class:`FileFactorizationStore` did, for benchmarks and tests."""

    hits: int = 0
    misses: int = 0
    #: Artifacts that existed but failed validation (corrupt/truncated/stale
    #: format) and were treated as misses.
    failures: int = 0
    publishes: int = 0
    #: Publish attempts declined (unsupported entry type, failed self-check,
    #: or disk I/O errors while writing — the store is always fail-soft).
    declined: int = 0
    #: Corrupt artifacts renamed to ``*.bad`` so they are probed exactly once.
    quarantined: int = 0
    pruned: int = 0
    bytes_written: int = 0
    bytes_mapped: int = 0

    def as_dict(self) -> dict:
        return {k: int(v) for k, v in self.__dict__.items()}


class StoreArtifactError(ValueError):
    """An artifact failed structural or probe validation (treated as a miss)."""


def _probe_rhs(fingerprint: str, n: int) -> np.ndarray:
    """Deterministic probe right-hand side derived from the operator key."""
    seed = int(hashlib.sha1(fingerprint.encode()).hexdigest()[:16], 16)
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n) + 1j * rng.standard_normal(n)


class StoredFactorization:
    """A factorization reconstructed from persisted triangular factors.

    Exposes the same ``solve`` contract as ``scipy.sparse.linalg.SuperLU``
    (1-D or ``(n, k)`` right-hand sides), built from memory-mapped CSR
    factors: ``x = Pc (U^{-1} (L^{-1} (Pr b)))`` with the SciPy SuperLU
    permutation convention ``A = Pr^T L U Pc^T``.  Solves cost two sparse
    triangular substitutions — a few ms against the ~100× more expensive
    refactorization the store exists to avoid (exact same solution up to
    floating-point op order).
    """

    __slots__ = ("L", "U", "perm_r", "perm_c", "shape", "nnz", "nbytes", "extras")

    #: Cache fall-through uses this to avoid re-publishing a loaded artifact.
    from_store = True

    def __init__(self, L, U, perm_r, perm_c, nbytes=0, extras=None):
        self.L = L
        self.U = U
        self.perm_r = np.asarray(perm_r)
        self.perm_c = np.asarray(perm_c)
        self.shape = L.shape
        self.nnz = int(L.nnz + U.nnz)
        self.nbytes = int(nbytes)
        self.extras = extras or {}

    @classmethod
    def from_superlu(cls, lu) -> "StoredFactorization":
        """Snapshot a live SuperLU object into reconstructable factors."""
        L = lu.L.tocsr()
        U = lu.U.tocsr()
        L.sort_indices()
        U.sort_indices()
        nbytes = sum(
            arr.nbytes
            for mat in (L, U)
            for arr in (mat.data, mat.indices, mat.indptr)
        )
        return cls(L, U, lu.perm_r, lu.perm_c, nbytes=nbytes)

    def solve(self, b: np.ndarray) -> np.ndarray:
        b = np.asarray(b, dtype=complex)
        z = np.empty_like(b)
        z[self.perm_r] = b
        y = spla.spsolve_triangular(self.L, z, lower=True, unit_diagonal=True)
        w = spla.spsolve_triangular(self.U, y, lower=False)
        return w[self.perm_c]


def _tag_safe(tag: str) -> str:
    safe = "".join(c if c.isalnum() or c in "-_" else "_" for c in tag)
    return safe or "entry"


def _grid_token(grid) -> str:
    """Stable textual identity of a grid (content, not object id)."""
    return f"{grid.nx}x{grid.ny}:dl={float(grid.dl)!r}:npml={grid.npml}"


class FileFactorizationStore:
    """Directory-backed factorization store shared across processes.

    Parameters
    ----------
    directory:
        Store directory (created on first publish).  Processes pointing at the
        same directory share artifacts; ``REPRO_FACTORIZATION_STORE=<dir>``
        attaches one to the default factorization cache everywhere.
    budget_bytes:
        Disk budget; publishing past it prunes the oldest artifacts
        (default :func:`default_store_budget_bytes`, ``0`` = unlimited).
    validate:
        Run the probe-solve validation on every load (default True).  The
        probe costs one back-substitution — noise against the factorization
        it replaces — and is the end-to-end guarantee that a mapped artifact
        solves the operator it claims to.
    """

    def __init__(
        self,
        directory: str | Path,
        budget_bytes: int | None = None,
        validate: bool = True,
    ):
        self.directory = Path(directory)
        self.budget_bytes = (
            default_store_budget_bytes() if budget_bytes is None else int(budget_bytes)
        )
        self.validate = bool(validate)
        self.stats = StoreStats()
        self._lock = threading.Lock()

    # -- keys ------------------------------------------------------------------
    def _operator_digest(self, grid, omega: float) -> str:
        payload = f"{_grid_token(grid)}|omega={float(omega)!r}"
        return hashlib.sha1(payload.encode()).hexdigest()[:12]

    def path_for(self, grid, omega: float, fingerprint: str, tag: str) -> Path:
        """Artifact path for one cache key (content-addressed file name)."""
        digest = self._operator_digest(grid, omega)
        return self.directory / f"{_tag_safe(tag)}-{digest}-{fingerprint}.fact"

    # -- publish ---------------------------------------------------------------
    def publish(
        self,
        grid,
        omega: float,
        fingerprint: str,
        tag: str,
        entry,
        extras: dict[str, np.ndarray] | None = None,
    ) -> bool:
        """Persist a factorization; returns False when declined.

        Only SuperLU-like entries (``L``/``U``/``perm_r``/``perm_c`` with a
        working ``solve``) are publishable; the factors must pass the probe
        self-check before anything touches disk.  Entries that came *from*
        the store are never re-published.
        """
        if getattr(entry, "from_store", False):
            return False
        for attr in ("L", "U", "perm_r", "perm_c", "solve"):
            if not hasattr(entry, attr):
                with self._lock:
                    self.stats.declined += 1
                return False
        try:
            snapshot = StoredFactorization.from_superlu(entry)
            dtype = np.dtype(snapshot.L.dtype)
            n = snapshot.shape[0]
            probe_b = _probe_rhs(fingerprint, n)
            # Only the factors are persisted, so the probe must go through the
            # factor-level solve: reduced-precision entries wrap their factors
            # with an equilibration their artifact will not carry
            # (``factor_solve`` is the unwrapped back-substitution).
            factor_solve = getattr(entry, "factor_solve", entry.solve)
            probe_x = np.asarray(factor_solve(probe_b))
            rebuilt = snapshot.solve(probe_b)
            if not _probe_matches(rebuilt, probe_x, _probe_rtol(dtype)):
                raise StoreArtifactError("factor snapshot does not reproduce solves")
        except Exception:
            with self._lock:
                self.stats.declined += 1
            return False

        arrays: dict[str, np.ndarray] = {
            "L_data": snapshot.L.data,
            "L_indices": snapshot.L.indices,
            "L_indptr": snapshot.L.indptr,
            "U_data": snapshot.U.data,
            "U_indices": snapshot.U.indices,
            "U_indptr": snapshot.U.indptr,
            "perm_r": snapshot.perm_r,
            "perm_c": snapshot.perm_c,
            "probe_x": probe_x.astype(np.complex128),
        }
        for name, array in (extras or {}).items():
            arrays[f"extra_{name}"] = np.ascontiguousarray(array)

        path = self.path_for(grid, omega, fingerprint, tag)
        try:
            faults.on_store_op("publish")
            written = self._write_artifact(path, arrays, n=n, dtype=dtype)
        except OSError as error:
            # Disk full, permissions, injected faults: the store is an
            # accelerator, never a correctness dependency — decline and let
            # the caller keep its in-memory factorization.
            logger.warning("factorization store publish failed for %s: %s", path.name, error)
            with self._lock:
                self.stats.declined += 1
            return False
        with self._lock:
            self.stats.publishes += 1
            self.stats.bytes_written += written
        self._prune()
        return True

    def _write_artifact(
        self, path: Path, arrays: dict[str, np.ndarray], n: int, dtype=None
    ) -> int:
        self.directory.mkdir(parents=True, exist_ok=True)
        header: dict = {"version": _FORMAT_VERSION, "n": int(n), "arrays": {}}
        if dtype is not None:
            # Factor precision, declared so loads scale the probe tolerance
            # without sniffing array dtypes (absent in pre-precision artifacts,
            # which are all complex128).
            header["dtype"] = np.dtype(dtype).name
        # Lay the segments out first so the header can declare absolute
        # offsets and the total size (the structural truncation check).
        segments: list[tuple[str, np.ndarray]] = []
        cursor = 0  # filled in after the header is serialized
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            header["arrays"][name] = {
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "nbytes": int(array.nbytes),
            }
            segments.append((name, array))
        header_blob = b""
        for _ in range(2):  # header size depends on offsets: fix-point in 2 passes
            cursor = len(_MAGIC) + 8 + len(header_blob)
            for name, array in segments:
                cursor = -(-cursor // _ALIGN) * _ALIGN  # align up
                header["arrays"][name]["offset"] = cursor
                cursor += array.nbytes
            header["total_size"] = cursor
            blob = json.dumps(header, sort_keys=True).encode("utf-8")
            if len(blob) == len(header_blob):
                header_blob = blob
                break
            header_blob = blob

        tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}-{threading.get_ident()}")
        try:
            with open(tmp, "wb") as fh:
                fh.write(_MAGIC)
                fh.write(len(header_blob).to_bytes(8, "little"))
                fh.write(header_blob)
                for name, array in segments:
                    offset = header["arrays"][name]["offset"]
                    fh.write(b"\x00" * (offset - fh.tell()))
                    fh.write(array.tobytes())
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)  # atomic publish: readers never see partials
        finally:
            if tmp.exists():  # pragma: no cover - only on a failed write
                tmp.unlink(missing_ok=True)
        return int(header["total_size"])

    # -- load ------------------------------------------------------------------
    def load(self, grid, omega: float, fingerprint: str, tag: str):
        """Map an artifact back into a solvable factorization, or None.

        Every failure mode — missing file, bad magic, truncation, probe
        mismatch — is a miss; the caller factorizes fresh.  An artifact that
        fails *structural or probe* validation is quarantined (renamed to
        ``*.bad`` and logged once) so the same corpse is never re-mapped and
        re-probe-failed on every subsequent miss of its fingerprint; plain
        I/O errors (e.g. a concurrent pruner unlinking mid-read) are
        transient and leave the file alone.
        """
        path = self.path_for(grid, omega, fingerprint, tag)
        try:
            faults.on_store_op("load")
            entry = self._read_artifact(path, fingerprint)
        except FileNotFoundError:
            with self._lock:
                self.stats.misses += 1
            return None
        except OSError:
            with self._lock:
                self.stats.failures += 1
                self.stats.misses += 1
            return None
        except (StoreArtifactError, ValueError, KeyError, json.JSONDecodeError) as error:
            with self._lock:
                self.stats.failures += 1
                self.stats.misses += 1
            self._quarantine(path, error)
            return None
        with self._lock:
            self.stats.hits += 1
            self.stats.bytes_mapped += entry.nbytes
        return entry

    def _quarantine(self, path: Path, error: Exception) -> None:
        """Move a corrupt artifact to ``<name>.bad`` (best-effort).

        The quarantined file no longer matches the ``*.fact`` glob, so
        enumeration, pruning and later loads never touch it again — the next
        miss of this fingerprint goes straight to a fresh factorization
        instead of re-mapping and re-probe-failing the same bytes.  Logged
        once per artifact: the rename removes what would trigger the next
        log line.
        """
        target = path.with_name(path.name + ".bad")
        try:
            os.replace(path, target)
        except OSError:  # pragma: no cover - racing unlink / readonly dir
            return
        with self._lock:
            self.stats.quarantined += 1
        logger.warning(
            "quarantined corrupt factorization artifact %s -> %s (%s)",
            path.name,
            target.name,
            error,
        )

    def _read_header(self, path: Path) -> dict:
        with open(path, "rb") as fh:
            if fh.read(len(_MAGIC)) != _MAGIC:
                raise StoreArtifactError(f"{path} is not a factorization artifact")
            header_len = int.from_bytes(fh.read(8), "little")
            if header_len <= 0 or header_len > (1 << 24):
                raise StoreArtifactError(f"{path} header length {header_len} is implausible")
            header = json.loads(fh.read(header_len).decode("utf-8"))
        if header.get("version") != _FORMAT_VERSION:
            raise StoreArtifactError(
                f"{path} has format version {header.get('version')!r}"
            )
        if path.stat().st_size != header["total_size"]:
            raise StoreArtifactError(f"{path} is truncated or over-long")
        return header

    def _map_array(self, path: Path, meta: dict) -> np.memmap:
        return np.memmap(
            path,
            mode="r",
            dtype=np.dtype(meta["dtype"]),
            shape=tuple(meta["shape"]),
            offset=int(meta["offset"]),
        )

    def _read_artifact(self, path: Path, fingerprint: str) -> StoredFactorization:
        header = self._read_header(path)
        arrays = header["arrays"]

        def mat(prefix: str) -> sp.csr_matrix:
            n = header["n"]
            matrix = sp.csr_matrix(
                (
                    self._map_array(path, arrays[f"{prefix}_data"]),
                    self._map_array(path, arrays[f"{prefix}_indices"]),
                    self._map_array(path, arrays[f"{prefix}_indptr"]),
                ),
                shape=(n, n),
                copy=False,
            )
            matrix.has_sorted_indices = True  # sorted at publish; skip the check
            return matrix

        extras = {
            name[len("extra_"):]: self._map_array(path, meta)
            for name, meta in arrays.items()
            if name.startswith("extra_")
        }
        entry = StoredFactorization(
            mat("L"),
            mat("U"),
            self._map_array(path, arrays["perm_r"]),
            self._map_array(path, arrays["perm_c"]),
            nbytes=int(header["total_size"]),
            extras=extras,
        )
        if self.validate:
            probe_b = _probe_rhs(fingerprint, header["n"])
            probe_x = self._map_array(path, arrays["probe_x"])
            rtol = _probe_rtol(header.get("dtype", "complex128"))
            if not _probe_matches(entry.solve(probe_b), probe_x, rtol):
                raise StoreArtifactError(f"{path} failed the probe-solve validation")
        return entry

    # -- enumeration (recycled-reference warming) --------------------------------
    def list_extras(
        self, grid, omega: float, tag: str, name: str, limit: int | None = None
    ) -> list[tuple[str, np.ndarray]]:
        """Fingerprints + one extra array per artifact of an operator family.

        Newest first (publish mtime).  Used by the recycled tier to adopt
        reference permittivities published by other processes; the heavy LU
        payload is *not* read here — it memory-maps lazily when the reference
        is first solved against (via the cache fall-through).
        """
        digest = self._operator_digest(grid, omega)
        prefix = f"{_tag_safe(tag)}-{digest}-"
        candidates = []
        try:
            for path in self.directory.glob(f"{prefix}*.fact"):
                try:
                    candidates.append((path.stat().st_mtime_ns, path))
                except OSError:  # pragma: no cover - racing deletion
                    continue
        except OSError:  # pragma: no cover - directory vanished
            return []
        candidates.sort(reverse=True)
        results: list[tuple[str, np.ndarray]] = []
        for _, path in candidates:
            if limit is not None and len(results) >= limit:
                break
            fingerprint = path.name[len(prefix):-len(".fact")]
            try:
                header = self._read_header(path)
                meta = header["arrays"][f"extra_{name}"]
                results.append((fingerprint, np.array(self._map_array(path, meta))))
            except (StoreArtifactError, OSError, ValueError, KeyError, json.JSONDecodeError):
                continue
        return results

    # -- housekeeping ------------------------------------------------------------
    def _prune(self) -> None:
        """Best-effort LRU-by-mtime pruning down to the disk budget.

        Concurrent pruners racing over the same directory are expected (any
        publishing process prunes): a file that vanishes between the scan and
        its ``stat``/``unlink`` was pruned by someone else, which is success
        — the bytes are gone — never a reason to abort the rest of the pass
        or to mis-count the remaining total.
        """
        if self.budget_bytes <= 0:
            return
        try:
            paths = list(self.directory.glob("*.fact"))
        except OSError:  # pragma: no cover - directory vanished
            return
        entries = []
        for path in paths:
            try:
                info = path.stat()
            except OSError:  # vanished mid-scan: already pruned elsewhere
                continue
            entries.append((info.st_mtime_ns, info.st_size, path))
        total = sum(size for _, size, _ in entries)
        if total <= self.budget_bytes:
            return
        entries.sort()  # oldest first
        for _, size, path in entries:
            if total <= self.budget_bytes:
                break
            try:
                path.unlink()
            except FileNotFoundError:
                # A concurrent pruner beat us to it; the bytes are still
                # reclaimed, so the running total must reflect that.
                total -= size
                continue
            except OSError:  # pragma: no cover - permissions and friends
                continue
            total -= size
            with self._lock:
                self.stats.pruned += 1

    def __len__(self) -> int:
        try:
            return sum(1 for _ in self.directory.glob("*.fact"))
        except OSError:  # pragma: no cover - directory vanished
            return 0
