"""Small shared utilities: configuration containers, RNG handling and numerics."""

from repro.utils.rng import get_rng, seed_everything
from repro.utils.config import Config
from repro.utils.parallel import cpu_count, effective_workers, run_tasks
from repro.utils.executor import (
    ExecutorConfig,
    LocalPoolExecutor,
    TaskExecutor,
    TaskFailure,
    TaskReport,
    execute_tasks,
)
from repro.utils.numerics import (
    normalized_l2,
    cosine_similarity,
    complex_to_channels,
    channels_to_complex,
)

__all__ = [
    "get_rng",
    "seed_everything",
    "Config",
    "cpu_count",
    "effective_workers",
    "run_tasks",
    "ExecutorConfig",
    "LocalPoolExecutor",
    "TaskExecutor",
    "TaskFailure",
    "TaskReport",
    "execute_tasks",
    "normalized_l2",
    "cosine_similarity",
    "complex_to_channels",
    "channels_to_complex",
]
