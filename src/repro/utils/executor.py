"""Fault-tolerant elastic task fabric.

The :class:`TaskExecutor` protocol (submit / poll / cancel with per-task
deadlines) abstracts "run these idempotent tasks somewhere"; the
:class:`LocalPoolExecutor` implementation wraps today's
``ProcessPoolExecutor`` path and adds the robustness layer the plain pool
lacks:

* **Task-level crash recovery.** ``concurrent.futures`` breaks the *whole*
  pool when one worker dies — every in-flight future raises
  ``BrokenProcessPool`` and completed-but-unretrieved work is lost. Here each
  worker slot is its own single-worker pool, so a crashed worker invalidates
  exactly the one task it was running: that task is requeued onto a respawned
  slot and every other result is kept. One injected worker death costs at
  most one task of recomputation.
* **Heartbeats + per-task deadlines.** Workers report ``start``/``beat``/
  ``done`` over a shared ``multiprocessing.Queue``. A task that exceeds its
  deadline, or whose worker goes silent past ``heartbeat_timeout``, has its
  worker SIGKILLed — which funnels into the same crash-recovery path.
* **Bounded retries with exponential backoff + jitter.** Failed / timed-out /
  crashed tasks are retried up to ``max_retries`` times; the jitter is drawn
  from a seed derived from ``(seed, task index, attempt)`` so schedules are
  reproducible.
* **Structured reporting.** Permanently-failing tasks land in
  :class:`TaskReport.failures` instead of aborting their siblings; the report
  also carries per-task attempt counts so callers (and ``bench_faults``) can
  account for wasted recomputation.
* **Serial fallback that keeps finished work.** If pools cannot be spawned at
  all (or every slot exhausts its respawn budget), remaining tasks run
  inline in the coordinating process — already-completed results are *not*
  recomputed.

``run_tasks`` in :mod:`repro.utils.parallel` is a thin wrapper over
:func:`execute_tasks` with retries off by default, preserving its historical
signature and bit-identical ordered results.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import random
import signal
import threading
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    CancelledError,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Protocol, Sequence, runtime_checkable

from repro.utils import faults

__all__ = [
    "ExecutorConfig",
    "LocalPoolExecutor",
    "TaskExecutor",
    "TaskFailure",
    "TaskOutcome",
    "TaskReport",
    "TaskTimeoutError",
    "WorkerCrashError",
    "execute_tasks",
]

_POLL_TICK = 0.05


class TaskTimeoutError(TimeoutError):
    """A task exceeded its deadline on every allowed attempt."""

    def __init__(self, index: int, timeout: float):
        super().__init__(f"task {index} exceeded its {timeout:.3g}s deadline")
        self.index = index
        self.timeout = timeout


class WorkerCrashError(RuntimeError):
    """A task's worker died on every allowed attempt."""

    def __init__(self, index: int, attempts: int):
        super().__init__(
            f"task {index} lost its worker on each of {attempts} attempt(s)"
        )
        self.index = index
        self.attempts = attempts


@dataclass(frozen=True)
class ExecutorConfig:
    """Retry / deadline / heartbeat policy for a :class:`LocalPoolExecutor`.

    ``timeout`` is the default per-task deadline (seconds, measured from
    dispatch and tightened to the worker's ``start`` report); ``submit`` may
    override it per task. ``max_retries`` bounds *re*-executions: a task runs
    at most ``1 + max_retries`` times. The retry delay for attempt ``a``
    (1-based) is ``backoff * backoff_factor**(a-1)`` scaled by a deterministic
    jitter in ``[1, 1 + jitter]`` seeded from ``(seed, index, a)``.
    ``heartbeat_timeout`` (off by default) kills workers that stop beating —
    the net for hung tasks that never return *and* never burn CPU.
    """

    timeout: float | None = None
    max_retries: int = 2
    backoff: float = 0.25
    backoff_factor: float = 2.0
    jitter: float = 0.25
    heartbeat_interval: float = 0.2
    heartbeat_timeout: float | None = None
    max_worker_respawns: int = 3
    seed: int = 0

    def retry_delay(self, index: int, attempt: int) -> float:
        base = self.backoff * self.backoff_factor ** max(attempt - 1, 0)
        if base <= 0:
            return 0.0
        if self.jitter <= 0:
            return base
        rng = random.Random(f"{self.seed}-{index}-{attempt}")
        return base * (1.0 + self.jitter * rng.random())


@dataclass(frozen=True)
class TaskFailure:
    """A task that exhausted its retry budget (or was cancelled)."""

    index: int
    attempts: int
    error: BaseException
    kind: str  # "error" | "timeout" | "crash" | "cancelled"

    def __str__(self) -> str:
        return (
            f"task {self.index} failed permanently after {self.attempts} "
            f"attempt(s) [{self.kind}]: {self.error!r}"
        )


@dataclass(frozen=True)
class TaskOutcome:
    """One settled task, as returned by :meth:`TaskExecutor.poll`."""

    index: int
    result: Any = None
    failure: TaskFailure | None = None

    @property
    def ok(self) -> bool:
        return self.failure is None


@dataclass
class TaskReport:
    """Structured outcome of a run: ordered results plus failure accounting."""

    results: list[Any]
    failures: list[TaskFailure] = field(default_factory=list)
    attempts: dict[int, int] = field(default_factory=dict)
    retries: int = 0
    timeouts: int = 0
    worker_crashes: int = 0
    respawns: int = 0
    serial_fallback: bool = False

    @property
    def ok(self) -> bool:
        return not self.failures

    def wasted_executions(self) -> int:
        """Task executions beyond the one each task needs (the waste metric)."""
        return sum(max(count - 1, 0) for count in self.attempts.values())

    def raise_first(self) -> None:
        if self.failures:
            raise self.failures[0].error


@runtime_checkable
class TaskExecutor(Protocol):
    """The executor seam: local pool today, multi-host dispatch tomorrow."""

    def submit(
        self, fn: Callable[[Any], Any], task: Any, *, timeout: float | None = None
    ) -> int:
        """Enqueue ``fn(task)``; returns the task's index (submission order)."""
        ...

    def poll(self, timeout: float | None = None) -> list[TaskOutcome]:
        """Advance execution; return newly settled tasks (maybe empty)."""
        ...

    def cancel(self, index: int) -> bool:
        """Cancel a task; True unless it already settled."""
        ...

    def done(self) -> bool:
        """True when every submitted task has settled."""
        ...

    def close(self) -> None:
        """Release workers. Safe to call more than once."""
        ...


# --------------------------------------------------------------------------
# Worker-side wrapper.  Runs inside the pool process: reports start / beat /
# done over the shared channel and gives the fault harness its hook.

_worker_channel = None


def _worker_init(channel, user_initializer, user_initargs):
    global _worker_channel
    _worker_channel = channel
    faults.mark_worker()
    if user_initializer is not None:
        user_initializer(*user_initargs)


def _run_task(index, attempt, fn, task, heartbeat_interval):
    channel = _worker_channel
    pid = os.getpid()
    stop = threading.Event()

    def send(kind):
        if channel is not None:
            try:
                channel.put_nowait((kind, pid, index, time.time()))
            except Exception:
                pass

    send("start")
    if channel is not None and heartbeat_interval and heartbeat_interval > 0:

        def beat():
            while not stop.wait(heartbeat_interval):
                send("beat")

        threading.Thread(target=beat, name="task-heartbeat", daemon=True).start()
    try:
        fault = faults.on_task_start(index, attempt)
        if fault is not None and fault.kind == "hang":
            stop.set()  # a hang is only a hang if the beats stop too
            time.sleep(fault.seconds)
        return fn(task)
    finally:
        stop.set()
        send("done")


class _Task:
    __slots__ = (
        "index",
        "fn",
        "payload",
        "timeout",
        "status",  # "ready" | "running" | "done" | "failed"
        "result",
        "failure",
        "failures_count",
        "not_before",
        "future",
        "slot",
        "dispatched_at",
        "started_at",
        "last_beat",
        "pending_kind",  # set when the parent kills the worker on purpose
    )

    def __init__(self, index, fn, payload, timeout):
        self.index = index
        self.fn = fn
        self.payload = payload
        self.timeout = timeout
        self.status = "ready"
        self.result = None
        self.failure = None
        self.failures_count = 0
        self.not_before = 0.0
        self.future = None
        self.slot = None
        self.dispatched_at = 0.0
        self.started_at = None
        self.last_beat = None
        self.pending_kind = None


class _Slot:
    __slots__ = ("pool", "pid", "respawns", "task_index", "dead")

    def __init__(self):
        self.pool = None
        self.pid = None
        self.respawns = 0
        self.task_index = None
        self.dead = False


class LocalPoolExecutor:
    """Single-host :class:`TaskExecutor` over per-slot worker processes.

    ``workers`` slots each hold a one-worker ``ProcessPoolExecutor`` so a
    worker crash is scoped to its own in-flight task. ``workers <= 1`` (or a
    total failure to spawn pools) runs tasks inline in this process —
    deadlines are not enforced there (a process cannot SIGKILL itself safely),
    but retries and reporting behave identically.
    """

    def __init__(
        self,
        workers: int,
        config: ExecutorConfig | None = None,
        initializer: Callable[..., None] | None = None,
        initargs: Sequence[Any] = (),
        pool_factory: Callable[[], Any] | None = None,
    ):
        self.config = config or ExecutorConfig()
        self.workers = max(int(workers), 1)
        self.initializer = initializer
        self.initargs = tuple(initargs)
        self._pool_factory = pool_factory
        self._tasks: dict[int, _Task] = {}
        self._ready: deque[int] = deque()
        self._completions: deque[TaskOutcome] = deque()
        self._settled = 0
        self._slots = [_Slot() for _ in range(self.workers)] if self.workers > 1 else []
        self._serial = self.workers <= 1
        self._serial_initialized = False
        self._channel = None
        self._mp_context = multiprocessing.get_context()
        self._closed = False
        self._attempts: dict[int, int] = {}
        self.retries = 0
        self.timeouts = 0
        self.worker_crashes = 0
        self.respawns = 0

    # -- protocol ----------------------------------------------------------

    def submit(self, fn, task, *, timeout=None):
        if self._closed:
            raise RuntimeError("executor is closed")
        index = len(self._tasks)
        effective = self.config.timeout if timeout is None else timeout
        self._tasks[index] = _Task(index, fn, task, effective)
        self._ready.append(index)
        return index

    def poll(self, timeout=None):
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            self._step()
            if self._completions:
                drained = list(self._completions)
                self._completions.clear()
                return drained
            if self.done():
                return []
            if deadline is not None and time.monotonic() >= deadline:
                return []
            self._wait_for_progress(deadline)

    def cancel(self, index):
        task = self._tasks.get(index)
        if task is None or task.status in ("done", "failed"):
            return False
        if task.status == "running" and task.slot is not None:
            task.pending_kind = "cancelled"
            self._kill_slot(task.slot)
            return True
        if task.status == "ready":
            try:
                self._ready.remove(index)
            except ValueError:
                pass
            self._settle_failure(task, CancelledError(f"task {index} cancelled"), "cancelled")
            return True
        return False

    def done(self):
        return self._settled == len(self._tasks)

    def close(self):
        if self._closed:
            return
        self._closed = True
        for slot in self._slots:
            if slot.pool is not None:
                try:
                    slot.pool.shutdown(wait=True, cancel_futures=True)
                except Exception:
                    pass
                slot.pool = None
        if self._channel is not None:
            try:
                self._channel.close()
            except Exception:
                pass
            self._channel = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def report(self) -> TaskReport:
        results = [None] * len(self._tasks)
        failures = []
        for index, task in self._tasks.items():
            results[index] = task.result
            if task.failure is not None:
                failures.append(task.failure)
        attempts = dict(self._attempts)
        return TaskReport(
            results=results,
            failures=sorted(failures, key=lambda f: f.index),
            attempts=attempts,
            retries=self.retries,
            timeouts=self.timeouts,
            worker_crashes=self.worker_crashes,
            respawns=self.respawns,
            serial_fallback=self._serial and self.workers > 1,
        )

    # -- internals ---------------------------------------------------------

    def _step(self):
        self._drain_channel()
        self._reap_futures()
        self._enforce_deadlines()
        self._dispatch()

    def _wait_for_progress(self, deadline):
        now = time.monotonic()
        tick = _POLL_TICK
        if deadline is not None:
            tick = min(tick, max(deadline - now, 0.0))
        futures = [
            t.future
            for t in self._tasks.values()
            if t.status == "running" and t.future is not None
        ]
        if futures:
            wait(futures, timeout=tick, return_when=FIRST_COMPLETED)
            return
        # Nothing running: we are either backing off before a retry or
        # about to dispatch; sleep only as long as the nearest retry needs.
        pending = [
            self._tasks[i].not_before for i in self._ready if self._tasks[i].not_before > now
        ]
        if pending:
            time.sleep(min(tick, max(min(pending) - now, 0.0)))
        else:
            time.sleep(0.001)

    # message pump ---------------------------------------------------------

    def _drain_channel(self):
        if self._channel is None:
            return
        while True:
            try:
                kind, pid, index, stamp = self._channel.get_nowait()
            except queue_module.Empty:
                return
            except (OSError, EOFError, ValueError):
                return
            task = self._tasks.get(index)
            if task is None or task.status != "running":
                continue
            now = time.monotonic()
            if task.slot is not None:
                task.slot.pid = pid
            if kind == "start":
                task.started_at = now
                task.last_beat = now
            elif kind in ("beat", "done"):
                task.last_beat = now

    # settling -------------------------------------------------------------

    def _reap_futures(self):
        for task in list(self._tasks.values()):
            if task.status != "running" or task.future is None:
                continue
            future = task.future
            if not future.done():
                continue
            slot = task.slot
            try:
                result = future.result()
            except BrokenExecutor as err:
                self._handle_crash(task, err)
                continue
            except BaseException as err:
                self._release_slot(slot)
                self._attempt_failed(task, err, "error")
                continue
            self._release_slot(slot)
            task.future = None
            task.slot = None
            task.result = result
            task.status = "done"
            self._settled += 1
            self._completions.append(TaskOutcome(task.index, result=result))

    def _handle_crash(self, task, err):
        slot = task.slot
        kind = task.pending_kind or "crash"
        task.pending_kind = None
        task.future = None
        task.slot = None
        if slot is not None:
            slot.task_index = None
            self._respawn_slot(slot)
        if kind == "cancelled":
            self._settle_failure(task, CancelledError(f"task {task.index} cancelled"), "cancelled")
            return
        if kind == "crash":
            self.worker_crashes += 1
        error: BaseException
        if kind == "timeout":
            error = TaskTimeoutError(task.index, task.timeout or 0.0)
        else:
            error = WorkerCrashError(task.index, task.failures_count + 1)
            error.__cause__ = err
        self._attempt_failed(task, error, kind, slot_already_released=True)

    def _attempt_failed(self, task, err, kind, slot_already_released=False):
        if not slot_already_released:
            task.future = None
            task.slot = None
        task.failures_count += 1
        if task.failures_count <= self.config.max_retries:
            self.retries += 1
            delay = self.config.retry_delay(task.index, task.failures_count)
            task.not_before = time.monotonic() + delay
            task.status = "ready"
            task.started_at = None
            task.last_beat = None
            self._ready.append(task.index)
            return
        self._settle_failure(task, err, kind)

    def _settle_failure(self, task, err, kind):
        task.status = "failed"
        task.failure = TaskFailure(
            index=task.index,
            attempts=self._attempts.get(task.index, task.failures_count),
            error=err,
            kind=kind,
        )
        self._settled += 1
        self._completions.append(TaskOutcome(task.index, failure=task.failure))

    # deadlines & heartbeats ----------------------------------------------

    def _enforce_deadlines(self):
        if self._serial:
            return
        now = time.monotonic()
        for task in self._tasks.values():
            if task.status != "running" or task.future is None or task.future.done():
                continue
            if task.pending_kind is not None:
                continue  # kill already in flight; wait for the pool to break
            started = task.started_at if task.started_at is not None else task.dispatched_at
            if task.timeout is not None and now - started > task.timeout:
                self.timeouts += 1
                task.pending_kind = "timeout"
                self._kill_slot(task.slot)
                continue
            hb = self.config.heartbeat_timeout
            if hb is not None and task.started_at is not None:
                last = task.last_beat if task.last_beat is not None else task.started_at
                if now - last > hb:
                    task.pending_kind = "crash"  # a silent worker counts as a crash
                    self._kill_slot(task.slot)

    def _kill_slot(self, slot):
        if slot is None:
            return
        pid = slot.pid
        if pid is None and slot.pool is not None:
            processes = getattr(slot.pool, "_processes", None) or {}
            pid = next(iter(processes), None)
        if pid is not None:
            try:
                os.kill(pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass

    # slots ----------------------------------------------------------------

    def _release_slot(self, slot):
        if slot is not None:
            slot.task_index = None

    def _respawn_slot(self, slot):
        pool = slot.pool
        slot.pool = None
        slot.pid = None
        if pool is not None:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
        slot.respawns += 1
        self.respawns += 1
        if slot.respawns > self.config.max_worker_respawns:
            slot.dead = True
            self._maybe_go_serial()

    def _retire_slot(self, slot):
        slot.dead = True
        pool = slot.pool
        slot.pool = None
        if pool is not None:
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
        self._maybe_go_serial()

    def _maybe_go_serial(self):
        if self._slots and all(slot.dead for slot in self._slots):
            self._serial = True

    def _make_pool(self):
        if self._pool_factory is not None:
            return self._pool_factory()
        if self._channel is None:
            self._channel = self._mp_context.Queue()
        return ProcessPoolExecutor(
            max_workers=1,
            mp_context=self._mp_context,
            initializer=_worker_init,
            initargs=(self._channel, self.initializer, self.initargs),
        )

    # dispatch -------------------------------------------------------------

    def _dispatch(self):
        if self._serial:
            self._dispatch_serial()
            return
        now = time.monotonic()
        for slot in self._slots:
            if not self._ready:
                return
            if slot.dead or slot.task_index is not None:
                continue
            index = self._pop_ready(now)
            if index is None:
                return
            task = self._tasks[index]
            if slot.pool is None:
                try:
                    slot.pool = self._make_pool()
                except (OSError, PermissionError):
                    self._ready.appendleft(index)
                    self._retire_slot(slot)
                    if self._serial:
                        self._dispatch_serial()
                        return
                    continue
            try:
                future = slot.pool.submit(
                    _run_task,
                    index,
                    task.failures_count,
                    task.fn,
                    task.payload,
                    self.config.heartbeat_interval,
                )
            except BrokenExecutor:
                self._ready.appendleft(index)
                self._respawn_slot(slot)
                if self._serial:
                    self._dispatch_serial()
                    return
                continue
            except (OSError, PermissionError, RuntimeError):
                self._ready.appendleft(index)
                self._retire_slot(slot)
                if self._serial:
                    self._dispatch_serial()
                    return
                continue
            task.future = future
            task.slot = slot
            task.status = "running"
            task.dispatched_at = now
            task.started_at = None
            task.last_beat = None
            slot.task_index = index
            self._attempts[index] = self._attempts.get(index, 0) + 1

    def _pop_ready(self, now):
        for _ in range(len(self._ready)):
            index = self._ready.popleft()
            if self._tasks[index].not_before <= now:
                return index
            self._ready.append(index)
        return None

    def _dispatch_serial(self):
        if not self._serial_initialized:
            self._serial_initialized = True
            if self.initializer is not None:
                self.initializer(*self.initargs)
        while self._ready:
            now = time.monotonic()
            index = self._pop_ready(now)
            if index is None:
                return  # every remaining task is backing off; poll will sleep
            task = self._tasks[index]
            task.status = "running"
            self._attempts[index] = self._attempts.get(index, 0) + 1
            try:
                faults.on_task_start(index, task.failures_count)
                result = task.fn(task.payload)
            except BaseException as err:
                self._attempt_failed(task, err, "error")
                continue
            task.result = result
            task.status = "done"
            self._settled += 1
            self._completions.append(TaskOutcome(index, result=result))


def execute_tasks(
    fn: Callable[[Any], Any],
    tasks: Iterable[Any],
    workers: int | None = None,
    config: ExecutorConfig | None = None,
    initializer: Callable[..., None] | None = None,
    initargs: Sequence[Any] = (),
) -> TaskReport:
    """Run ``fn`` over ``tasks`` on the fault-tolerant fabric.

    Results come back in submission order; failures never abort siblings —
    inspect (or ``raise_first`` on) the returned :class:`TaskReport`.
    """
    from repro.utils.parallel import effective_workers

    task_list = list(tasks)
    config = config or ExecutorConfig()
    pool_size = effective_workers(workers, len(task_list))
    executor = LocalPoolExecutor(
        pool_size, config=config, initializer=initializer, initargs=initargs
    )
    try:
        for task in task_list:
            executor.submit(fn, task)
        while not executor.done():
            executor.poll()
        return executor.report()
    finally:
        executor.close()
