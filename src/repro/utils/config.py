"""A light-weight configuration container.

MAPS exposes "flexibly configurable" sampling, training and inverse-design
pipelines.  :class:`Config` is a dictionary with attribute access, recursive
merging and serialization — enough to describe the experiments in this
reproduction without pulling in an external configuration framework.
"""

from __future__ import annotations

import copy
import json
from typing import Any, Iterator, Mapping


class Config(dict):
    """Dictionary with attribute access and recursive update.

    Examples
    --------
    >>> cfg = Config(model=Config(name="fno", modes=8), lr=1e-3)
    >>> cfg.model.name
    'fno'
    >>> cfg.merged(Config(model=Config(modes=12))).model.modes
    12
    """

    def __getattr__(self, name: str) -> Any:
        try:
            return self[name]
        except KeyError as exc:
            raise AttributeError(name) from exc

    def __setattr__(self, name: str, value: Any) -> None:
        self[name] = value

    def __delattr__(self, name: str) -> None:
        try:
            del self[name]
        except KeyError as exc:
            raise AttributeError(name) from exc

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Config":
        """Recursively convert a mapping (and nested mappings) into Configs."""
        cfg = cls()
        for key, value in data.items():
            if isinstance(value, Mapping):
                cfg[key] = cls.from_dict(value)
            else:
                cfg[key] = value
        return cfg

    def to_dict(self) -> dict:
        """Recursively convert back to plain dictionaries."""
        out: dict = {}
        for key, value in self.items():
            if isinstance(value, Config):
                out[key] = value.to_dict()
            else:
                out[key] = value
        return out

    def merged(self, other: Mapping[str, Any]) -> "Config":
        """Return a deep copy of ``self`` recursively updated with ``other``."""
        result = copy.deepcopy(self)
        result.update_recursive(other)
        return result

    def update_recursive(self, other: Mapping[str, Any]) -> None:
        """Recursively update in place with values from ``other``."""
        for key, value in other.items():
            if (
                key in self
                and isinstance(self[key], Mapping)
                and isinstance(value, Mapping)
            ):
                child = self[key]
                if not isinstance(child, Config):
                    child = Config.from_dict(child)
                    self[key] = child
                child.update_recursive(value)
            elif isinstance(value, Mapping) and not isinstance(value, Config):
                self[key] = Config.from_dict(value)
            else:
                self[key] = value

    def to_json(self, **kwargs: Any) -> str:
        """Serialize to a JSON string (non-serializable leaves become strings)."""
        return json.dumps(self.to_dict(), default=str, **kwargs)

    @classmethod
    def from_json(cls, text: str) -> "Config":
        """Deserialize from a JSON string produced by :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def flat_items(self, prefix: str = "") -> Iterator[tuple[str, Any]]:
        """Iterate over ``(dotted_key, value)`` pairs of all leaves."""
        for key, value in self.items():
            dotted = f"{prefix}{key}"
            if isinstance(value, Config):
                yield from value.flat_items(prefix=dotted + ".")
            else:
                yield dotted, value
