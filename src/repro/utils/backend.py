"""Thin array-namespace seam: NumPy by default, CuPy/torch when present.

Everything numerical in this repository is written against the NumPy API.
This module is the single place that decides *which* array namespace actually
executes that API — the seam the engine layer (dense residual/axpy work in
:class:`~repro.fdfd.engine.RefinedEngine` and friends) and the ``nn`` stack
(tensor storage, FFTs) sit on top of:

* ``numpy`` — always available, always the default.  Nothing in the test
  suite or the benchmarks requires anything else.
* ``cupy`` — auto-detected when importable *and* a CUDA device answers; the
  namespace is NumPy-compatible, so dense kernels offload unchanged.
* ``torch`` — auto-detected when importable; arrays are bridged through
  ``torch.from_numpy`` / ``Tensor.numpy()`` (zero-copy on CPU).

Detection never raises and optional backends are never imported unless asked
for: ``available_backends()`` on a NumPy-only machine is ``["numpy"]`` and
every default path costs one dict lookup.  Select a non-default backend
explicitly (``get_backend("cupy")``, ``set_default_backend``) or process-wide
via ``REPRO_ARRAY_BACKEND=<name>``; asking for a backend whose import fails
raises with the import error attached rather than silently falling back, so a
mis-provisioned GPU job fails loudly at configuration time.

The sparse factorizations themselves stay on SciPy/CPU for now — the seam
covers the dense array math around them, which is exactly the split the
mixed-precision ``refined`` tier needs and the future ``gpu`` tier widens.
"""

from __future__ import annotations

import importlib
import os
import threading

import numpy as np

__all__ = [
    "ArrayBackend",
    "available_backends",
    "backend_names",
    "default_namespace",
    "get_backend",
    "set_default_backend",
]

#: Registry order doubles as auto-detection preference (numpy always first).
_BACKEND_NAMES = ("numpy", "cupy", "torch")

_lock = threading.Lock()
_backends: dict[str, "ArrayBackend"] = {}
_default_name: str | None = None


class ArrayBackend:
    """One array namespace plus the conversions in and out of NumPy.

    ``xp`` is the NumPy-compatible module to write kernels against
    (``backend.xp.fft.fft2(...)``); ``asarray``/``to_numpy`` move data across
    the host boundary (both are identity for the NumPy backend, so CPU-only
    code pays nothing for being written against the seam).
    """

    __slots__ = ("name", "xp", "is_gpu", "_to_numpy")

    def __init__(self, name: str, xp, is_gpu: bool, to_numpy=None):
        self.name = name
        self.xp = xp
        self.is_gpu = bool(is_gpu)
        self._to_numpy = to_numpy

    def asarray(self, array, dtype=None):
        """Bring ``array`` into this backend's namespace."""
        if dtype is None:
            return self.xp.asarray(array)
        return self.xp.asarray(array, dtype=dtype)

    def to_numpy(self, array) -> np.ndarray:
        """Bring an array of this namespace back to host NumPy."""
        if self._to_numpy is not None:
            return self._to_numpy(array)
        return np.asarray(array)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArrayBackend({self.name!r}, gpu={self.is_gpu})"


def _build_backend(name: str) -> ArrayBackend:
    """Construct a backend, raising ImportError when its stack is absent."""
    if name == "numpy":
        return ArrayBackend("numpy", np, is_gpu=False)
    if name == "cupy":
        cupy = importlib.import_module("cupy")
        # A CUDA runtime without a device raises here, not mid-solve.
        cupy.cuda.runtime.getDeviceCount()
        return ArrayBackend("cupy", cupy, is_gpu=True, to_numpy=cupy.asnumpy)
    if name == "torch":
        torch = importlib.import_module("torch")

        class _TorchNamespace:
            """``torch`` with NumPy-flavoured ``asarray`` dtype handling."""

            def __getattr__(self, attr):
                return getattr(torch, attr)

            @staticmethod
            def asarray(array, dtype=None):
                tensor = torch.as_tensor(np.asarray(array))
                if dtype is not None:
                    tensor = tensor.to(_torch_dtype(torch, dtype))
                return tensor

        def to_numpy(tensor):
            return tensor.detach().cpu().numpy()

        return ArrayBackend(
            "torch",
            _TorchNamespace(),
            is_gpu=bool(torch.cuda.is_available()),
            to_numpy=to_numpy,
        )
    raise ValueError(f"unknown array backend {name!r}; known: {list(_BACKEND_NAMES)}")


def _torch_dtype(torch, dtype):
    """Map a NumPy dtype spec onto the torch dtype enum."""
    mapping = {
        "float32": torch.float32,
        "float64": torch.float64,
        "complex64": torch.complex64,
        "complex128": torch.complex128,
        "int64": torch.int64,
        "int32": torch.int32,
        "bool": torch.bool,
    }
    key = np.dtype(dtype).name
    if key not in mapping:  # pragma: no cover - exotic dtype
        raise TypeError(f"no torch equivalent for dtype {dtype!r}")
    return mapping[key]


def backend_names() -> list[str]:
    """Every name :func:`get_backend` understands (installed or not)."""
    return list(_BACKEND_NAMES)


def available_backends() -> list[str]:
    """Backends that actually import on this machine (``numpy`` always).

    Optional stacks are probed at most once per process; a probe failure is
    cached as "unavailable", never raised.
    """
    names = []
    for name in _BACKEND_NAMES:
        try:
            get_backend(name)
        except Exception:
            continue
        names.append(name)
    return names


def get_backend(name: str | None = None) -> ArrayBackend:
    """Resolve an array backend by name (cached per process).

    ``None`` resolves the process default: an explicit
    :func:`set_default_backend` wins, then a non-empty
    ``REPRO_ARRAY_BACKEND``, then ``numpy``.  Unknown names raise
    ``ValueError``; known-but-unimportable ones re-raise the import error.
    """
    if name is None:
        name = _default_name or os.environ.get("REPRO_ARRAY_BACKEND", "") or "numpy"
    name = name.lower().strip()
    if name not in _BACKEND_NAMES:
        raise ValueError(f"unknown array backend {name!r}; known: {list(_BACKEND_NAMES)}")
    with _lock:
        backend = _backends.get(name)
        if backend is None:
            _backends[name] = backend = _build_backend(name)
        return backend


def set_default_backend(name: str | None) -> None:
    """Fix the process-default backend (``None`` restores env/NumPy resolution).

    Resolves eagerly so a bad name or a missing stack fails here — at
    configuration time — rather than inside the first worker solve.
    """
    global _default_name
    if name is not None:
        get_backend(name)
        name = name.lower().strip()
    _default_name = name


def default_namespace():
    """The default backend's array namespace (``numpy`` unless configured).

    The one-liner the ``nn``/autograd stack uses for array creation: CPU-only
    installs get literally ``numpy`` back.
    """
    return get_backend().xp


# --------------------------------------------------------------------------- #
# host-in / host-out FFT seam (the nn stack's hot transforms)
# --------------------------------------------------------------------------- #
def _fft_call(op: str, array, *args):
    """Run one FFT op through the default backend, host array in and out.

    Positional arguments only: ``numpy.fft`` and ``torch.fft`` agree on
    positional signatures (``fft2(a, s, axes)`` vs ``fft2(a, s, dim)``) but
    not on keyword names.  The NumPy backend short-circuits to ``np.fft``
    directly — zero conversion, zero overhead.
    """
    backend = get_backend()
    if not backend.is_gpu and backend.xp is np:
        return getattr(np.fft, op)(array, *args)
    result = getattr(backend.xp.fft, op)(backend.asarray(array), *args)
    return backend.to_numpy(result)


def fft2(array, axes=(-2, -1)) -> np.ndarray:
    """2-D FFT over ``axes`` through the configured backend."""
    return _fft_call("fft2", array, None, tuple(axes))


def ifft2(array, axes=(-2, -1)) -> np.ndarray:
    """2-D inverse FFT over ``axes`` through the configured backend."""
    return _fft_call("ifft2", array, None, tuple(axes))


def fft(array, axis=-1) -> np.ndarray:
    """1-D FFT along ``axis`` through the configured backend."""
    return _fft_call("fft", array, None, int(axis))


def ifft(array, axis=-1) -> np.ndarray:
    """1-D inverse FFT along ``axis`` through the configured backend."""
    return _fft_call("ifft", array, None, int(axis))
