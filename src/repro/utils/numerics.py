"""Shared numerical helpers used by the solver, metrics and surrogates."""

from __future__ import annotations

import numpy as np


def normalized_l2(pred: np.ndarray, target: np.ndarray, eps: float = 1e-12) -> float:
    """Normalized L2 norm ``||pred - target|| / ||target||``.

    This is the field-prediction metric reported throughout the MAPS paper
    ("N-L2norm").  Works on real or complex arrays of any shape.
    """
    pred = np.asarray(pred)
    target = np.asarray(target)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    num = np.linalg.norm((pred - target).ravel())
    den = np.linalg.norm(target.ravel())
    return float(num / (den + eps))


def cosine_similarity(a: np.ndarray, b: np.ndarray, eps: float = 1e-12) -> float:
    """Cosine similarity between two flattened real vectors.

    Used as the "gradient similarity" metric: the alignment between an
    adjoint gradient computed from predicted fields and the ground-truth
    gradient from the numerical solver.
    """
    a = np.asarray(a, dtype=float).ravel()
    b = np.asarray(b, dtype=float).ravel()
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    na = np.linalg.norm(a)
    nb = np.linalg.norm(b)
    if na < eps or nb < eps:
        return 0.0
    return float(np.dot(a, b) / (na * nb))


def complex_to_channels(field: np.ndarray) -> np.ndarray:
    """Stack a complex array into two real channels (real, imaginary).

    ``(H, W)`` complex → ``(2, H, W)`` float.  Surrogate models operate on real
    tensors, so complex fields are carried as channel pairs.
    """
    field = np.asarray(field)
    return np.stack([field.real, field.imag], axis=0).astype(np.float64)


def channels_to_complex(channels: np.ndarray) -> np.ndarray:
    """Inverse of :func:`complex_to_channels`: ``(2, H, W)`` → complex ``(H, W)``."""
    channels = np.asarray(channels)
    if channels.shape[0] != 2:
        raise ValueError(f"expected leading dimension 2, got {channels.shape}")
    return channels[0] + 1j * channels[1]


def soft_clip(x: np.ndarray, lo: float, hi: float) -> np.ndarray:
    """Clip values into ``[lo, hi]`` (simple wrapper kept for readability)."""
    return np.clip(x, lo, hi)


def resample_bilinear(array: np.ndarray, shape: tuple[int, int]) -> np.ndarray:
    """Resample a 2-D array to ``shape`` with bilinear interpolation.

    Used to map between coarse (low-fidelity) and fine (high-fidelity) grids
    and to feed coarse designs into models trained at a different resolution.
    Handles real and complex input.
    """
    array = np.asarray(array)
    if array.ndim != 2:
        raise ValueError(f"expected a 2-D array, got shape {array.shape}")
    if np.iscomplexobj(array):
        real = resample_bilinear(array.real, shape)
        imag = resample_bilinear(array.imag, shape)
        return real + 1j * imag

    src_h, src_w = array.shape
    dst_h, dst_w = shape
    if (src_h, src_w) == (dst_h, dst_w):
        return array.copy()

    # Coordinates of destination pixel centres in source pixel units.
    ys = (np.arange(dst_h) + 0.5) * src_h / dst_h - 0.5
    xs = (np.arange(dst_w) + 0.5) * src_w / dst_w - 0.5
    ys = np.clip(ys, 0, src_h - 1)
    xs = np.clip(xs, 0, src_w - 1)

    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    y1 = np.minimum(y0 + 1, src_h - 1)
    x1 = np.minimum(x0 + 1, src_w - 1)
    wy = (ys - y0)[:, None]
    wx = (xs - x0)[None, :]

    top = array[np.ix_(y0, x0)] * (1 - wx) + array[np.ix_(y0, x1)] * wx
    bot = array[np.ix_(y1, x0)] * (1 - wx) + array[np.ix_(y1, x1)] * wx
    return top * (1 - wy) + bot * wy
