"""Deterministic random-number handling.

Every stochastic component in the package (sampling strategies, weight
initialization, variation models) draws from a :class:`numpy.random.Generator`
obtained through :func:`get_rng`, so experiments are reproducible from a single
seed.
"""

from __future__ import annotations

import random

import numpy as np

_GLOBAL_SEED = 0


def seed_everything(seed: int) -> None:
    """Seed Python's and NumPy's global random state.

    Components that accept an explicit ``rng`` argument are unaffected; this is
    a convenience for scripts that rely on the module-level default generator.
    """
    global _GLOBAL_SEED
    _GLOBAL_SEED = int(seed)
    random.seed(seed)
    np.random.seed(seed % (2**32 - 1))


def get_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` uses the last value passed to :func:`seed_everything` (default
        0); an integer seeds a fresh generator; an existing generator is
        returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = _GLOBAL_SEED
    return np.random.default_rng(int(seed))
