"""Deterministic fault injection for the task fabric.

This module is the single switchboard through which tests and benchmarks
inject failures into the generation / serving stack: kill the worker running
the Nth task, delay a task past its deadline, hang a worker (heartbeats go
silent), truncate a shard artifact just after it was written, or raise from
inside :class:`FileFactorizationStore` I/O.

Design constraints, in order of importance:

* **Deterministic.** A :class:`FaultPlan` names exact task / shard indices and
  byte-exact actions; nothing is sampled at fire time. Two runs with the same
  plan inject the same faults at the same points.
* **Fires once.** Retried tasks and respawned workers re-execute the same code
  paths, so each injector claims a *marker* before firing. With a
  ``scratch`` directory configured the marker is a file created with
  ``O_EXCL`` — exactly-once across every process in the run, surviving worker
  respawns. Without a scratch dir markers are process-local (fine for
  single-process unit tests).
* **Invisible when disabled.** Every hook starts with a cheap
  ``plan is None`` check; production code paths pay one dict lookup on
  ``os.environ`` per call site.

The active plan travels to pool workers through the ``REPRO_FAULTS``
environment variable (a JSON blob), so it survives both fork and spawn start
methods without any pickling support from the executor.
"""

from __future__ import annotations

import json
import logging
import os
import signal
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterator

logger = logging.getLogger(__name__)

ENV_VAR = "REPRO_FAULTS"

__all__ = [
    "ENV_VAR",
    "FaultPlan",
    "TaskFault",
    "active_plan",
    "clear_plan",
    "get_plan",
    "in_worker",
    "install_plan",
    "mark_worker",
    "on_shard_saved",
    "on_store_op",
    "on_task_start",
]


@dataclass(frozen=True)
class FaultPlan:
    """A declarative description of which faults to inject, and where.

    Indices refer to task submission order (``kill_task`` / ``delay_task`` /
    ``hang_task``) or shard plan order (``truncate_shard``). ``None`` disables
    an injector. ``scratch`` names a directory used for cross-process
    fire-once markers; leave it unset only for single-process tests.
    """

    kill_task: int | None = None
    delay_task: int | None = None
    delay_seconds: float = 2.0
    hang_task: int | None = None
    hang_seconds: float = 30.0
    truncate_shard: int | None = None
    store_errors: int = 0
    store_ops: tuple[str, ...] = ("load", "publish")
    scratch: str | None = None

    def to_json(self) -> str:
        payload = asdict(self)
        payload["store_ops"] = list(self.store_ops)
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, raw: str) -> "FaultPlan":
        payload = json.loads(raw)
        if not isinstance(payload, dict):
            raise ValueError(f"{ENV_VAR} must hold a JSON object, got {raw!r}")
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown fault-plan keys: {sorted(unknown)}")
        if "store_ops" in payload:
            payload["store_ops"] = tuple(payload["store_ops"])
        return cls(**payload)


@dataclass(frozen=True)
class TaskFault:
    """An action :func:`on_task_start` asks the caller to perform.

    ``kill`` and ``delay`` execute inline; ``hang`` is returned so the task
    wrapper can silence its heartbeat thread before sleeping (a hang is only a
    hang if the worker stops beating).
    """

    kind: str
    seconds: float = 0.0


# --------------------------------------------------------------------------
# Plan resolution.  An explicitly installed plan wins; otherwise the
# environment variable is parsed (and cached against its raw value so workers
# and monkeypatching tests both see changes immediately).

_installed: FaultPlan | None = None
_env_raw: str | None = None
_env_plan: FaultPlan | None = None
_local_markers: set[str] = set()
_in_worker = False


def get_plan() -> FaultPlan | None:
    """Return the active plan, or ``None`` when fault injection is off."""
    if _installed is not None:
        return _installed
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return None
    global _env_raw, _env_plan
    if raw != _env_raw:
        _env_plan = FaultPlan.from_json(raw)
        _env_raw = raw
    return _env_plan


def install_plan(plan: FaultPlan) -> None:
    """Activate ``plan`` in this process and export it to child processes."""
    global _installed
    _installed = plan
    os.environ[ENV_VAR] = plan.to_json()


def clear_plan() -> None:
    """Deactivate fault injection and reset process-local fire-once state."""
    global _installed, _env_raw, _env_plan
    _installed = None
    _env_raw = None
    _env_plan = None
    _local_markers.clear()
    os.environ.pop(ENV_VAR, None)


@contextmanager
def active_plan(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Context manager: install ``plan``, restore the previous state on exit."""
    previous_env = os.environ.get(ENV_VAR)
    install_plan(plan)
    try:
        yield plan
    finally:
        clear_plan()
        if previous_env is not None:
            os.environ[ENV_VAR] = previous_env


def mark_worker() -> None:
    """Record that this process is a pool worker (kill/hang injectors only
    ever fire inside workers — never in the coordinating parent)."""
    global _in_worker
    _in_worker = True


def in_worker() -> bool:
    return _in_worker


def _claim(plan: FaultPlan, marker: str) -> bool:
    """Atomically claim a fire-once marker. True exactly once per marker."""
    if plan.scratch:
        root = Path(plan.scratch)
        try:
            root.mkdir(parents=True, exist_ok=True)
            with open(root / f"fault-{marker}", "x"):
                pass
            return True
        except FileExistsError:
            return False
        except OSError:
            logger.warning("fault marker %s unusable; falling back to process-local", marker)
    if marker in _local_markers:
        return False
    _local_markers.add(marker)
    return True


# --------------------------------------------------------------------------
# Hooks.  Call sites are: the executor's in-worker task wrapper
# (on_task_start), run_shard after save_shard (on_shard_saved), and
# FileFactorizationStore.load/publish (on_store_op).


def on_task_start(index: int, attempt: int = 0) -> TaskFault | None:
    """Fire task-level injectors for task ``index`` (submission order).

    ``kill`` SIGKILLs the current process (workers only — a no-op in the
    coordinating parent, including the serial fallback). ``delay`` sleeps
    inline with heartbeats still running, so it exercises the *deadline*
    path. ``hang`` is returned to the caller so it can silence heartbeats
    first, exercising the *lost-worker* path.
    """
    plan = get_plan()
    if plan is None:
        return None
    if plan.kill_task == index and in_worker() and _claim(plan, f"kill-{index}"):
        logger.warning("fault injection: killing worker pid=%d on task %d", os.getpid(), index)
        os.kill(os.getpid(), signal.SIGKILL)
    if plan.delay_task == index and _claim(plan, f"delay-{index}"):
        logger.warning(
            "fault injection: delaying task %d by %.3gs", index, plan.delay_seconds
        )
        time.sleep(plan.delay_seconds)
    if plan.hang_task == index and in_worker() and _claim(plan, f"hang-{index}"):
        logger.warning("fault injection: hanging task %d (heartbeats stop)", index)
        return TaskFault("hang", plan.hang_seconds)
    return None


def on_shard_saved(spec_index: int, path: "os.PathLike[str] | str") -> None:
    """Truncate the artifact for shard ``spec_index`` to half its size —
    simulating a crash mid-write after the atomic rename raced through."""
    plan = get_plan()
    if plan is None or plan.truncate_shard != spec_index:
        return
    if not _claim(plan, f"truncate-{spec_index}"):
        return
    target = Path(path)
    try:
        size = target.stat().st_size
        with open(target, "r+b") as handle:
            handle.truncate(max(size // 2, 1))
        logger.warning(
            "fault injection: truncated shard artifact %s to %d bytes",
            target.name,
            max(size // 2, 1),
        )
    except OSError:
        logger.warning("fault injection: could not truncate %s", target)


def on_store_op(op: str) -> None:
    """Raise an injected ``OSError`` from factorization-store I/O.

    Fires at most ``plan.store_errors`` times per op named in
    ``plan.store_ops`` (exactly-once semantics per (op, k) marker pair).
    """
    plan = get_plan()
    if plan is None or plan.store_errors <= 0 or op not in plan.store_ops:
        return
    for k in range(plan.store_errors):
        if _claim(plan, f"store-{op}-{k}"):
            logger.warning("fault injection: raising from store op %r (%d)", op, k)
            raise OSError(f"injected fault: store {op} failure #{k}")
