"""Process-pool helpers with deterministic ordering and a serial fallback.

The sharded dataset generator (and any future fan-out workload) maps a worker
function over a task list.  :func:`run_tasks` keeps that seam small: results
always come back in task order, ``workers <= 1`` runs everything in-process
(no pickling, no subprocesses — the debuggable path), and environments where
process pools cannot start (restricted sandboxes) degrade to the serial path
instead of crashing.
"""

from __future__ import annotations

import os
from collections import deque
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor


def cpu_count() -> int:
    """Number of CPUs actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def effective_workers(workers: int | None, num_tasks: int | None = None) -> int:
    """Resolve a worker-count request.

    ``None`` or ``0`` means "all available cores"; the result is clamped to
    the number of tasks (spawning more processes than tasks is pure overhead).
    """
    if workers is None or workers == 0:
        workers = cpu_count()
    workers = int(workers)
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if num_tasks is not None:
        workers = min(workers, max(int(num_tasks), 1))
    return max(workers, 1)


class Prefetcher:
    """Background-load an ordered task sequence with bounded lookahead.

    The consumer knows, up front, the exact order in which it will need a
    sequence of expensive loads (e.g. the shard files a training epoch will
    touch).  A prefetcher runs ``fn(task)`` for the next few tasks on
    background *threads* (the payloads are large NumPy arrays, so processes
    would only add pickling) while the consumer works, and hands results back
    strictly in task order via :meth:`next`.

    Two properties matter to callers:

    * **Order-independence** — results come back in the planned order no
      matter how many workers run or which finishes first, so a prefetched
      pipeline is bit-identical to the synchronous one.
    * **Bounded lookahead** — at most ``depth`` results are in flight or
      waiting at any time, so memory stays bounded by the lookahead window,
      not the task list.

    With ``workers <= 0`` the prefetcher degrades to calling ``fn``
    synchronously in :meth:`next` — the debuggable path, and the guarantee
    that a prefetcher never *changes* results, only their latency.
    """

    def __init__(self, fn, tasks, workers: int = 1, depth: int | None = None):
        self._fn = fn
        self._tasks = deque(tasks)
        self.workers = max(int(workers), 0)
        if depth is None:
            depth = self.workers + 1
        if depth < 1:
            raise ValueError(f"depth must be at least 1, got {depth}")
        self.depth = int(depth)
        self._futures: deque = deque()
        self._executor = (
            ThreadPoolExecutor(max_workers=self.workers)
            if self.workers > 0 and self._tasks
            else None
        )
        self._pump()

    def _pump(self) -> None:
        if self._executor is None:
            return
        while self._tasks and len(self._futures) < self.depth:
            self._futures.append(self._executor.submit(self._fn, self._tasks.popleft()))

    def __len__(self) -> int:
        return len(self._tasks) + len(self._futures)

    def next(self):
        """Result of the next task in the planned order (blocks until ready)."""
        if self._executor is None:
            if not self._tasks:
                raise StopIteration("prefetcher exhausted")
            return self._fn(self._tasks.popleft())
        if not self._futures:
            raise StopIteration("prefetcher exhausted")
        future = self._futures.popleft()
        try:
            result = future.result()
        finally:
            self._pump()
        return result

    def close(self) -> None:
        """Cancel outstanding work and release the worker threads."""
        for future in self._futures:
            future.cancel()
        self._futures.clear()
        self._tasks.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "Prefetcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def run_tasks(fn, tasks, workers: int | None = 1, initializer=None, initargs=()):
    """Map ``fn`` over ``tasks``, preserving order.

    With ``workers`` resolved to more than one, tasks fan out over a
    ``ProcessPoolExecutor`` (``fn`` and every task must be picklable).
    Pool-infrastructure failures — worker processes that cannot be spawned
    (restricted sandboxes, fork EAGAIN) or a pool that dies mid-flight —
    degrade to the serial in-process path, so ``fn`` must be idempotent.
    Exceptions raised by ``fn`` itself propagate in both modes: they re-raise
    from the futures and are never mistaken for pool failures.

    ``initializer(*initargs)`` runs once per worker process before any task
    (the generator uses it to attach the shared factorization store to each
    worker's cache); the serial path runs it once in-process so both modes see
    identically-prepared workers.  Initializer crashes in a pool surface as
    ``BrokenExecutor`` and thus also degrade to the serial path — where the
    same crash, if it reproduces, propagates undisguised.
    """
    tasks = list(tasks)
    workers = effective_workers(workers, len(tasks))

    def run_serial():
        if initializer is not None:
            initializer(*initargs)
        return [fn(task) for task in tasks]

    if workers <= 1 or len(tasks) <= 1:
        return run_serial()
    executor = ProcessPoolExecutor(
        max_workers=workers, initializer=initializer, initargs=tuple(initargs)
    )
    try:
        try:
            # Worker spawn is lazy in CPython: submit() is where spawn
            # failures surface, distinct from errors fn raises later.
            futures = [executor.submit(fn, task) for task in tasks]
        except (OSError, PermissionError):  # pragma: no cover - spawn failure
            return run_serial()
        try:
            return [future.result() for future in futures]
        except BrokenExecutor:  # pragma: no cover - pool died mid-run
            return run_serial()
    finally:
        executor.shutdown(wait=True, cancel_futures=True)
