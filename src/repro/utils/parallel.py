"""Process-pool helpers with deterministic ordering and a serial fallback.

The sharded dataset generator (and any future fan-out workload) maps a worker
function over a task list.  :func:`run_tasks` keeps that seam small: results
always come back in task order, ``workers <= 1`` runs everything in-process
(no pickling, no subprocesses — the debuggable path), and environments where
process pools cannot start (restricted sandboxes) degrade to the serial path
instead of crashing.  Since the fault-tolerant task fabric landed
(:mod:`repro.utils.executor`), ``run_tasks`` is a thin wrapper over
:func:`repro.utils.executor.execute_tasks` — same signature, bit-identical
ordered results — with optional per-task deadlines and bounded retries.
"""

from __future__ import annotations

import os
from collections import deque
from concurrent.futures import ThreadPoolExecutor


def cpu_count() -> int:
    """Number of CPUs actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def effective_workers(workers: int | None, num_tasks: int | None = None) -> int:
    """Resolve a worker-count request.

    ``None`` or ``0`` means "all available cores"; the result is clamped to
    the number of tasks (spawning more processes than tasks is pure overhead).
    """
    if workers is None or workers == 0:
        workers = cpu_count()
    workers = int(workers)
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if num_tasks is not None:
        workers = min(workers, max(int(num_tasks), 1))
    return max(workers, 1)


class Prefetcher:
    """Background-load an ordered task sequence with bounded lookahead.

    The consumer knows, up front, the exact order in which it will need a
    sequence of expensive loads (e.g. the shard files a training epoch will
    touch).  A prefetcher runs ``fn(task)`` for the next few tasks on
    background *threads* (the payloads are large NumPy arrays, so processes
    would only add pickling) while the consumer works, and hands results back
    strictly in task order via :meth:`next`.

    Two properties matter to callers:

    * **Order-independence** — results come back in the planned order no
      matter how many workers run or which finishes first, so a prefetched
      pipeline is bit-identical to the synchronous one.
    * **Bounded lookahead** — at most ``depth`` results are in flight or
      waiting at any time, so memory stays bounded by the lookahead window,
      not the task list.

    With ``workers <= 0`` the prefetcher degrades to calling ``fn``
    synchronously in :meth:`next` — the debuggable path, and the guarantee
    that a prefetcher never *changes* results, only their latency.
    """

    def __init__(self, fn, tasks, workers: int = 1, depth: int | None = None):
        self._fn = fn
        self._tasks = deque(tasks)
        self.workers = max(int(workers), 0)
        if depth is None:
            depth = self.workers + 1
        if depth < 1:
            raise ValueError(f"depth must be at least 1, got {depth}")
        self.depth = int(depth)
        self._futures: deque = deque()
        self._executor = (
            ThreadPoolExecutor(max_workers=self.workers)
            if self.workers > 0 and self._tasks
            else None
        )
        self._pump()

    def _pump(self) -> None:
        if self._executor is None:
            return
        while self._tasks and len(self._futures) < self.depth:
            self._futures.append(self._executor.submit(self._fn, self._tasks.popleft()))

    def __len__(self) -> int:
        return len(self._tasks) + len(self._futures)

    def next(self):
        """Result of the next task in the planned order (blocks until ready)."""
        if self._executor is None:
            if not self._tasks:
                raise StopIteration("prefetcher exhausted")
            return self._fn(self._tasks.popleft())
        if not self._futures:
            raise StopIteration("prefetcher exhausted")
        future = self._futures.popleft()
        try:
            result = future.result()
        finally:
            self._pump()
        return result

    def close(self) -> None:
        """Cancel outstanding work and release the worker threads."""
        for future in self._futures:
            future.cancel()
        self._futures.clear()
        self._tasks.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __enter__(self) -> "Prefetcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def run_tasks(
    fn,
    tasks,
    workers: int | None = 1,
    initializer=None,
    initargs=(),
    *,
    timeout: float | None = None,
    max_retries: int = 0,
    retry_backoff: float = 0.25,
):
    """Map ``fn`` over ``tasks``, preserving order.

    With ``workers`` resolved to more than one, tasks fan out over the
    fault-tolerant task fabric (``fn`` and every task must be picklable, and
    ``fn`` must be idempotent): each worker slot is an isolated process, so a
    crashed or killed worker invalidates only its own in-flight task — that
    task is requeued onto a respawned worker while completed results are
    kept.  Environments where pools cannot start at all degrade to the serial
    in-process path, reusing any results already computed.  Exceptions raised
    by ``fn`` itself propagate in both modes (after ``max_retries``
    re-executions — zero by default, matching the historical contract) and
    are never mistaken for pool failures.

    ``timeout`` sets a per-task deadline (seconds): a task that exceeds it
    has its worker killed and is retried on a fresh one; deadlines are not
    enforced on the serial path.  ``initializer(*initargs)`` runs once per
    worker process before any task; the serial path runs it once in-process
    so both modes see identically-prepared workers.
    """
    from repro.utils.executor import ExecutorConfig, execute_tasks

    config = ExecutorConfig(timeout=timeout, max_retries=max_retries, backoff=retry_backoff)
    report = execute_tasks(
        fn, tasks, workers=workers, config=config, initializer=initializer, initargs=initargs
    )
    report.raise_first()
    return report.results
