"""Process-pool helpers with deterministic ordering and a serial fallback.

The sharded dataset generator (and any future fan-out workload) maps a worker
function over a task list.  :func:`run_tasks` keeps that seam small: results
always come back in task order, ``workers <= 1`` runs everything in-process
(no pickling, no subprocesses — the debuggable path), and environments where
process pools cannot start (restricted sandboxes) degrade to the serial path
instead of crashing.
"""

from __future__ import annotations

import os
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor


def cpu_count() -> int:
    """Number of CPUs actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def effective_workers(workers: int | None, num_tasks: int | None = None) -> int:
    """Resolve a worker-count request.

    ``None`` or ``0`` means "all available cores"; the result is clamped to
    the number of tasks (spawning more processes than tasks is pure overhead).
    """
    if workers is None or workers == 0:
        workers = cpu_count()
    workers = int(workers)
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if num_tasks is not None:
        workers = min(workers, max(int(num_tasks), 1))
    return max(workers, 1)


def run_tasks(fn, tasks, workers: int | None = 1):
    """Map ``fn`` over ``tasks``, preserving order.

    With ``workers`` resolved to more than one, tasks fan out over a
    ``ProcessPoolExecutor`` (``fn`` and every task must be picklable).
    Pool-infrastructure failures — worker processes that cannot be spawned
    (restricted sandboxes, fork EAGAIN) or a pool that dies mid-flight —
    degrade to the serial in-process path, so ``fn`` must be idempotent.
    Exceptions raised by ``fn`` itself propagate in both modes: they re-raise
    from the futures and are never mistaken for pool failures.
    """
    tasks = list(tasks)
    workers = effective_workers(workers, len(tasks))
    if workers <= 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    executor = ProcessPoolExecutor(max_workers=workers)
    try:
        try:
            # Worker spawn is lazy in CPython: submit() is where spawn
            # failures surface, distinct from errors fn raises later.
            futures = [executor.submit(fn, task) for task in tasks]
        except (OSError, PermissionError):  # pragma: no cover - spawn failure
            return [fn(task) for task in tasks]
        try:
            return [future.result() for future in futures]
        except BrokenExecutor:  # pragma: no cover - pool died mid-run
            return [fn(task) for task in tasks]
    finally:
        executor.shutdown(wait=True, cancel_futures=True)
