"""Design-sampling strategies for dataset acquisition.

The central question of MAPS-Data: which design patterns should be simulated
and labelled so that a model trained on them generalizes to the patterns an
inverse-design optimizer actually visits?  Three strategies are provided:

* :class:`RandomSampling` — random (mostly binarized) patterns drawn from the
  design space, the approach of most prior datasets; almost all samples are
  low-performance devices.
* :class:`OptTrajSampling` — designs harvested along adjoint optimization
  trajectories; covers low- to high-performance devices but over-represents
  converged, near-binary patterns.
* :class:`PerturbedOptTrajSampling` — trajectory samples plus random
  perturbations of them, which re-balances the figure-of-merit distribution
  (Fig. 5 of the paper).

Every strategy yields :class:`DesignSample` records (density + provenance tag)
that the :class:`~repro.data.generator.DatasetGenerator` turns into fully
labelled dataset entries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.devices.base import Device
from repro.invdes.optimizer import AdjointOptimizer
from repro.invdes.problem import InverseDesignProblem
from repro.utils.rng import get_rng


@dataclass
class DesignSample:
    """A design density plus provenance information.

    ``weight`` is the per-design loss weight carried into every label derived
    from the design (shard metadata → loader → trainer): acquisition loops set
    it to the (normalized) acquisition score so informative designs pull
    harder on the training loss.  The default 1.0 is "unweighted".
    """

    density: np.ndarray
    stage: str
    fom_hint: float | None = None
    weight: float = 1.0


class SamplingStrategy:
    """Base class: produce a list of design densities for a device."""

    name = "base"

    def sample(self, device: Device, num_samples: int, rng=None) -> list[DesignSample]:
        raise NotImplementedError


class RandomSampling(SamplingStrategy):
    """Random blob patterns (smoothed noise, thresholded to mostly-binary).

    Mirrors the "predefine a design space and randomly sample structures"
    strategy criticized in the paper: cheap, but nearly every sample is a
    low-performance device.
    """

    name = "random"

    def __init__(self, smooth_cells: float = 1.5, binarize: bool = True, fill_low: float = 0.3, fill_high: float = 0.7):
        if smooth_cells <= 0:
            raise ValueError(f"smoothing radius must be positive, got {smooth_cells}")
        if not 0.0 <= fill_low <= fill_high <= 1.0:
            raise ValueError("fill fractions must satisfy 0 <= low <= high <= 1")
        self.smooth_cells = float(smooth_cells)
        self.binarize = binarize
        self.fill_low = fill_low
        self.fill_high = fill_high

    def sample(self, device: Device, num_samples: int, rng=None) -> list[DesignSample]:
        rng = get_rng(rng)
        samples = []
        for _ in range(num_samples):
            noise = rng.normal(size=device.design_shape)
            smooth = ndimage.gaussian_filter(noise, sigma=self.smooth_cells)
            if self.binarize:
                fill = rng.uniform(self.fill_low, self.fill_high)
                threshold = np.quantile(smooth, 1.0 - fill)
                density = (smooth >= threshold).astype(float)
            else:
                low, high = smooth.min(), smooth.max()
                density = (smooth - low) / (high - low + 1e-12)
            samples.append(DesignSample(density=density, stage="random"))
        return samples


class OptTrajSampling(SamplingStrategy):
    """Designs harvested along adjoint optimization trajectories.

    Runs one or more (short) inverse-design optimizations from different
    initializations and collects the iterates, which range from soft,
    low-performance patterns early on to binarized, high-performance patterns
    at convergence.
    """

    name = "opt_traj"

    def __init__(
        self,
        iterations: int = 30,
        learning_rate: float = 0.15,
        restarts: int = 1,
        init_kinds: tuple[str, ...] = ("random", "uniform"),
    ):
        # Trajectories start from low-performance initializations (random /
        # uniform gray) so the harvested iterates traverse the full FoM range,
        # from soft low-FoM patterns to converged high-FoM structures.
        if iterations <= 0:
            raise ValueError(f"iterations must be positive, got {iterations}")
        self.iterations = iterations
        self.learning_rate = learning_rate
        self.restarts = max(int(restarts), 1)
        self.init_kinds = tuple(init_kinds)

    def _trajectories(self, device: Device, rng) -> list:
        trajectories = []
        for restart in range(self.restarts):
            problem = InverseDesignProblem(device)
            kind = self.init_kinds[restart % len(self.init_kinds)]
            theta0 = problem.initial_theta(kind=kind, rng=rng)
            optimizer = AdjointOptimizer(
                problem,
                learning_rate=self.learning_rate,
                beta_schedule={0: 4.0, self.iterations // 2: 8.0},
            )
            trajectories.append(optimizer.run(theta0=theta0, iterations=self.iterations))
        return trajectories

    def sample(self, device: Device, num_samples: int, rng=None) -> list[DesignSample]:
        rng = get_rng(rng)
        trajectories = self._trajectories(device, rng)
        pool = [
            DesignSample(
                density=point.density,
                stage=f"opt-traj:{point.iteration}",
                fom_hint=point.fom,
            )
            for trajectory in trajectories
            for point in trajectory
        ]
        if len(pool) <= num_samples:
            return pool
        # Uniformly subsample along the trajectory to the requested count.
        indices = np.linspace(0, len(pool) - 1, num_samples).round().astype(int)
        return [pool[i] for i in indices]


class PerturbedOptTrajSampling(OptTrajSampling):
    """Optimization-trajectory sampling with random perturbations.

    Trajectory iterates are kept, but a configurable fraction of the budget is
    spent on perturbed copies of them (pixel noise plus smooth blob noise).
    Perturbing high-FoM iterates produces mid-performance designs that pure
    trajectory sampling misses, balancing the figure-of-merit histogram
    (Fig. 5a) and widening the coverage of the pattern space (Fig. 5b).
    """

    name = "perturbed_opt_traj"

    def __init__(
        self,
        iterations: int = 30,
        learning_rate: float = 0.15,
        restarts: int = 1,
        init_kinds: tuple[str, ...] = ("random", "uniform"),
        perturbation_fraction: float = 0.5,
        noise_amplitude: float = 0.5,
        smooth_cells: float = 1.0,
    ):
        super().__init__(
            iterations=iterations,
            learning_rate=learning_rate,
            restarts=restarts,
            init_kinds=init_kinds,
        )
        if not 0.0 <= perturbation_fraction < 1.0:
            raise ValueError(
                f"perturbation fraction must be in [0, 1), got {perturbation_fraction}"
            )
        self.perturbation_fraction = perturbation_fraction
        self.noise_amplitude = noise_amplitude
        self.smooth_cells = smooth_cells

    def _perturb(self, density: np.ndarray, rng) -> np.ndarray:
        noise = rng.normal(size=density.shape)
        smooth_noise = ndimage.gaussian_filter(noise, sigma=self.smooth_cells)
        smooth_noise /= np.abs(smooth_noise).max() + 1e-12
        amplitude = rng.uniform(0.3, 1.0) * self.noise_amplitude
        perturbed = density + amplitude * smooth_noise
        return np.clip(perturbed, 0.0, 1.0)

    def sample(self, device: Device, num_samples: int, rng=None) -> list[DesignSample]:
        rng = get_rng(rng)
        num_perturbed = int(round(num_samples * self.perturbation_fraction))
        num_trajectory = num_samples - num_perturbed
        base = super().sample(device, max(num_trajectory, 1), rng=rng)
        samples = list(base[:num_trajectory])

        # Perturb iterates drawn uniformly from the harvested trajectory points,
        # favouring the later (higher-FoM) ones which random sampling never sees.
        if base:
            weights = np.linspace(0.5, 1.0, len(base))
            weights /= weights.sum()
            for _ in range(num_perturbed):
                pick = base[int(rng.choice(len(base), p=weights))]
                samples.append(
                    DesignSample(
                        density=self._perturb(pick.density, rng),
                        stage="perturbed",
                        fom_hint=None,
                    )
                )
        return samples


_STRATEGIES = {
    "random": RandomSampling,
    "opt_traj": OptTrajSampling,
    "perturbed_opt_traj": PerturbedOptTrajSampling,
}


def make_sampler(name: str, **kwargs) -> SamplingStrategy:
    """Build a sampling strategy by name (``random``, ``opt_traj``, ``perturbed_opt_traj``)."""
    key = name.lower().strip()
    if key not in _STRATEGIES:
        raise ValueError(f"unknown sampling strategy {name!r}; available: {sorted(_STRATEGIES)}")
    return _STRATEGIES[key](**kwargs)
