"""Multi-fidelity dataset generation.

The generator combines a device, a sampling strategy and a set of fidelity
levels, simulates every sampled design under every excitation spec and packs
the rich labels into a :class:`~repro.data.dataset.PhotonicDataset`.  When more
than one fidelity is requested, the *same* designs are simulated at every
fidelity so the dataset contains paired low/high-fidelity samples (linked by
``design_id``), which is what multi-fidelity model training consumes.

Generation is *sharded* (see :mod:`repro.data.shards`): the run is split into
deterministic fidelity x design-block shards that can execute serially, fan
out across worker processes (``workers=``) or persist as resumable artifacts
(``shard_dir=``).  Shard layout is a pure function of the config, so the
merged dataset is bit-identical regardless of worker count — parallelism is a
throughput knob, never a label change.  The solver fidelity tier is selected
end-to-end with ``engine=`` (a registry name — including a promoted surrogate
checkpoint ``"neural:<checkpoint.npz>"`` — or a per-fidelity mapping such as
``{"low": "iterative", "high": "direct"}``).

Run ``python -m repro.data.generator --help`` for the command-line interface.
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import dataclass, replace
from pathlib import Path

from repro.data.dataset import PhotonicDataset
from repro.data.labels import RichLabels
from repro.data.sampling import DesignSample, SamplingStrategy, make_sampler
from repro.data.shards import (
    ShardTask,
    configure_worker,
    discard_stale_partials,
    engine_for_fidelity,
    engine_tag,
    plan_shards,
    quarantine_artifact,
    run_shard,
    shard_filename,
    shard_fingerprint,
    try_load_shard,
)
from repro.devices.factory import make_device
from repro.fdfd.engine import (
    SolverEngine,
    available_engines,
    load_engine_tiers,
    split_engine_name,
)
from repro.utils import backend as array_backend
from repro.utils.executor import ExecutorConfig, TaskFailure, TaskReport, execute_tasks
from repro.utils.parallel import effective_workers
from repro.utils.rng import get_rng


class ShardExecutionError(RuntimeError):
    """Some shards failed permanently; everything else was persisted.

    Raised after every shard has had its chance (failures never abort
    siblings): ``failures`` lists the permanently-failed shards and
    ``report`` is the underlying :class:`~repro.utils.executor.TaskReport`.
    Completed shards' artifacts are already on disk, so rerunning with
    ``resume=True`` recomputes exactly the failed shards.
    """

    def __init__(self, shard_failures: list[tuple[ShardTask, TaskFailure]], report: TaskReport):
        self.shard_failures = shard_failures
        self.report = report
        described = ", ".join(
            f"shard {task.spec.index} ({task.spec.fidelity}, "
            f"designs {task.spec.design_ids[0]}..{task.spec.design_ids[-1]}): "
            f"{failure.error!r} after {failure.attempts} attempt(s)"
            for task, failure in shard_failures
        )
        super().__init__(
            f"{len(shard_failures)} shard(s) failed permanently [{described}]; "
            "completed shards were persisted — rerunning with resume=True "
            "recomputes only the failed shards"
        )


@dataclass
class GeneratorConfig:
    """Configuration of one dataset-generation run.

    ``engine`` selects the solver fidelity tier end-to-end: a registry name
    (``"direct"``, ``"iterative"``, ``"recycled"``, or a promoted surrogate
    checkpoint ``"neural:<checkpoint.npz>"``), an engine instance — serial
    runs only — or a ``{fidelity: name}`` mapping with an optional ``"*"``
    default.  ``workers`` fans shards out across processes (0 = all available
    cores); ``shard_size`` fixes the shard layout independently of the worker
    count; ``shard_dir`` persists shards as resumable artifacts
    (``resume=False`` forces recomputation).  ``design_id_offset`` shifts the
    global design ids of the run — active-learning loops use it to append new
    designs to an existing shard directory without colliding with the ids
    already there.

    ``factorization_store`` names a directory shared by every worker (and by
    later runs): each worker's factorization cache falls through to it, so the
    pool factorizes each distinct operator once *total* instead of once per
    worker — see :class:`~repro.service.FileFactorizationStore`.  Store-mapped
    factorizations reproduce fresh ones to solver accuracy (not bit-for-bit),
    so leave it unset when exact byte-level reproducibility across store
    states matters more than throughput.  Shard fingerprints deliberately
    exclude it: attaching a store never invalidates resumable artifacts.

    ``backend`` names the array backend every worker configures at startup
    (``"numpy"``, ``"cupy"``, ``"torch"`` — see
    :mod:`repro.utils.backend`).  It selects *where* dense array math runs,
    not what it computes, so it is also excluded from shard fingerprints;
    an unavailable backend fails at configuration time, not inside a worker.

    ``task_timeout`` / ``max_retries`` / ``retry_backoff`` set the
    fault-tolerance policy of the worker fabric (see
    :mod:`repro.utils.executor`): a shard whose worker crashes, hangs past
    its deadline, or raises is retried up to ``max_retries`` times on a
    respawned worker (exponential backoff starting at ``retry_backoff``
    seconds), and a shard that fails permanently surfaces in a
    :class:`ShardExecutionError` *after* its siblings finished — their
    artifacts persist, so a ``resume=True`` rerun recomputes only what was
    lost.  Retries never change labels: shards are deterministic functions
    of the config, so the merged dataset stays bit-identical to an
    undisturbed run.

    Examples
    --------
    Paired two-tier generation, four worker processes, resumable artifacts::

        config = GeneratorConfig(
            device_name="bending",
            strategy="random",
            num_designs=32,
            fidelities=("low", "high"),
            engine={"low": "iterative", "high": "direct"},
            workers=4,
            shard_dir="shards",   # rerunning resumes finished shards
        )
        dataset = DatasetGenerator(config).generate()

    Labelling with a promoted surrogate (checkpoint paths travel through
    worker processes, live engine instances cannot)::

        config = GeneratorConfig(engine="neural:bend_surrogate.npz", workers=4)
    """

    device_name: str = "bending"
    strategy: str = "perturbed_opt_traj"
    num_designs: int = 32
    fidelities: tuple[str, ...] = ("low",)
    with_gradient: bool = True
    #: Broadband mode: label every spec at each of these wavelengths instead
    #: of its own (forward-only — requires ``with_gradient=False``).  With
    #: ``engine="fdtd"`` one pulsed time-domain run per excitation covers the
    #: whole set; other engines solve once per wavelength.
    wavelengths: tuple[float, ...] | None = None
    #: Nonlinear mode: label every spec at the converged Kerr fixed point
    #: with this chi3 (``eps_eff = eps + chi3 |E|^2`` over the device's
    #: nonlinear-material map).  None keeps the linear solves — and keeps
    #: every pre-existing artifact fingerprint bit-identical.
    chi3: float | None = None
    #: Intensity axis of nonlinear runs (requires ``chi3``): label each spec
    #: at every one of these source scales, intensity-major — the nonlinear
    #: analogue of ``wavelengths``.
    intensities: tuple[float, ...] | None = None
    seed: int = 0
    strategy_kwargs: dict | None = None
    device_kwargs: dict | None = None
    engine: SolverEngine | str | dict | None = None
    workers: int = 1
    shard_size: int = 8
    shard_dir: str | None = None
    resume: bool = True
    design_id_offset: int = 0
    factorization_store: str | None = None
    backend: str | None = None
    task_timeout: float | None = None
    max_retries: int = 2
    retry_backoff: float = 0.25


class DatasetGenerator:
    """Generate labelled, optionally multi-fidelity datasets for one device."""

    def __init__(self, config: GeneratorConfig | None = None, **overrides):
        if config is None:
            config = GeneratorConfig()
        if overrides:
            for key in overrides:
                if not hasattr(config, key):
                    raise TypeError(f"unknown generator option {key!r}")
            # Never mutate the caller's config: overrides apply to a copy.
            config = replace(config, **overrides)
        self.config = config
        #: Fault-tolerance accounting of the most recent ``generate`` call:
        #: the executor's :class:`~repro.utils.executor.TaskReport`, plus how
        #: many unreadable worker artifacts the parent recovered in-process.
        self.last_task_report: TaskReport | None = None
        self.last_shard_recoveries: int = 0
        if config.wavelengths is not None and config.with_gradient:
            raise ValueError(
                "broadband generation (wavelengths=...) is forward-only; "
                "set with_gradient=False"
            )
        if config.intensities is not None and config.chi3 is None:
            raise ValueError(
                "intensities is the nonlinear sweep axis; set chi3 too"
            )
        if config.chi3 is not None and config.wavelengths is not None:
            raise ValueError("broadband and nonlinear generation cannot be combined")
        self._validate_engine()
        if config.backend:
            # Resolve eagerly: a mis-provisioned backend (bad name, missing
            # stack) should fail here, not inside the first pool worker.
            array_backend.get_backend(config.backend)

    def _validate_engine(self) -> None:
        """Fail fast on unknown engine names instead of inside a worker."""
        engine = self.config.engine
        if isinstance(engine, dict):
            unknown = set(engine) - set(self.config.fidelities) - {"*"}
            if unknown:
                raise ValueError(
                    f"engine mapping keys {sorted(unknown)} match no configured "
                    f"fidelity {list(self.config.fidelities)} (use '*' for a default)"
                )
        for fidelity in self.config.fidelities:
            engine = engine_for_fidelity(self.config.engine, fidelity)
            if isinstance(engine, str):
                # A ":<spec>" suffix (checkpoint-backed engines like
                # "neural:model.npz") names the base factory; only that base
                # must exist in the registry.
                base, _ = split_engine_name(engine)
                if base not in available_engines():
                    # Optional tiers (neural, service, fdtd) register on
                    # import; pull them all in before declaring the name bad.
                    load_engine_tiers()
                if base not in available_engines():
                    raise ValueError(
                        f"unknown engine {engine!r} for fidelity {fidelity!r}; "
                        f"available: {available_engines()}"
                    )

    # -- sampling ------------------------------------------------------------------
    def _sampler(self) -> SamplingStrategy:
        return make_sampler(self.config.strategy, **(self.config.strategy_kwargs or {}))

    def _device(self, fidelity: str):
        return make_device(
            self.config.device_name, fidelity=fidelity, **(self.config.device_kwargs or {})
        )

    def sample_designs(self) -> list[DesignSample]:
        """Draw the design patterns (at the first / reference fidelity)."""
        rng = get_rng(self.config.seed)
        device = self._device(self.config.fidelities[0])
        sampler = self._sampler()
        return sampler.sample(device, self.config.num_designs, rng=rng)

    # -- generation -----------------------------------------------------------------
    def generate(
        self,
        designs: list[DesignSample] | None = None,
        workers: int | None = None,
    ) -> PhotonicDataset:
        """Run all simulations and return the labelled dataset.

        Parameters
        ----------
        designs:
            Pre-sampled designs (at the reference fidelity); drawn with the
            configured strategy if omitted.
        workers:
            Overrides ``config.workers`` for this call (0 = all cores).  The
            result is bit-identical for any worker count.
        """
        config = self.config
        if designs is None:
            designs = self.sample_designs()
        if not designs:
            raise ValueError("no designs to label")
        workers = config.workers if workers is None else workers

        reference_shape = tuple(self._device(config.fidelities[0]).design_shape)
        plan = plan_shards(config, num_designs=len(designs))
        shard_dir = Path(config.shard_dir) if config.shard_dir else None
        if shard_dir is not None:
            shard_dir.mkdir(parents=True, exist_ok=True)

        results: dict[int, tuple[list[RichLabels], list[int]]] = {}
        pending: list[ShardTask] = []
        offset = int(config.design_id_offset or 0)
        for spec in plan:
            # Shard design_ids are global (offset applied by plan_shards);
            # the designs list is indexed locally from 0.
            shard_designs = [designs[i - offset] for i in spec.design_ids]
            densities = [d.density for d in shard_designs]
            stages = [d.stage for d in shard_designs]
            weights = [float(getattr(d, "weight", 1.0)) for d in shard_designs]
            fingerprint = shard_fingerprint(config, spec, densities, stages, weights)
            path = shard_dir / shard_filename(fingerprint) if shard_dir else None
            if path is not None:
                # A writer that crashed mid-write may have left temp files;
                # they are dead weight at best (and, under the legacy naming,
                # loader-visible) — clear them before anything else runs.
                discard_stale_partials(path)
            if path is not None and config.resume:
                loaded = try_load_shard(path, fingerprint)
                if loaded is not None:
                    results[spec.index] = loaded
                    continue
                if path.exists():
                    # Present but unreadable / mismatched: quarantine it so
                    # it never poisons this (or any later) resume scan, then
                    # recompute the shard under its original name.
                    quarantine_artifact(path)
            pending.append(
                ShardTask(
                    spec=spec,
                    config=config,
                    densities=densities,
                    stages=stages,
                    reference_shape=reference_shape,
                    fingerprint=fingerprint,
                    shard_path=str(path) if path is not None else None,
                    weights=weights,
                )
            )

        num_workers = effective_workers(workers, len(pending))
        if num_workers > 1 and self._has_engine_instance():
            raise ValueError(
                "engine instances cannot cross process boundaries; pass the "
                "engine by registry name for parallel generation"
            )
        if num_workers <= 1:
            # In-process execution: artifacts are still written for resume,
            # but labels come back in memory (no compress/decompress detour).
            for task in pending:
                task.return_labels = True
        initializer, initargs = None, ()
        if config.factorization_store or config.backend:
            # Warm every worker (or, serially, this process): select the
            # array backend, then attach the shared store so fresh
            # factorizations publish back through the same path.
            initializer = configure_worker
            initargs = (
                config.backend,
                str(config.factorization_store) if config.factorization_store else None,
            )
        executor_config = ExecutorConfig(
            timeout=config.task_timeout,
            max_retries=max(int(config.max_retries), 0),
            backoff=float(config.retry_backoff),
            seed=int(config.seed),
        )
        report = execute_tasks(
            run_shard,
            pending,
            workers=num_workers,
            config=executor_config,
            initializer=initializer,
            initargs=initargs,
        )
        self.last_task_report = report
        self.last_shard_recoveries = 0
        failures_by_position = {failure.index: failure for failure in report.failures}
        shard_failures: list[tuple[ShardTask, TaskFailure]] = []
        parent_warmed = initializer is None
        for position, (task, output) in enumerate(zip(pending, report.results)):
            failure = failures_by_position.get(position)
            if failure is not None:
                if task.shard_path is not None:
                    # Whatever the failed attempts left behind must never be
                    # mistaken for a finished shard on the next resume.
                    discard_stale_partials(task.shard_path)
                    salvaged = try_load_shard(task.shard_path, task.fingerprint)
                    if salvaged is not None:
                        # Complete, valid artifact: the final attempt died
                        # *after* its atomic rename.  Keep the work.
                        results[task.spec.index] = salvaged
                        continue
                    quarantine_artifact(task.shard_path)
                shard_failures.append((task, failure))
                continue
            if isinstance(output, str):
                loaded = try_load_shard(output, task.fingerprint)
                if loaded is None:
                    # The worker reported success but its artifact does not
                    # read back (e.g. storage truncated it mid-write).
                    # Quarantine the corpse and recompute this one shard
                    # in-process — exactly one shard of wasted work.
                    quarantine_artifact(output)
                    if not parent_warmed:
                        initializer(*initargs)
                        parent_warmed = True
                    labels_ids = run_shard(replace(task, return_labels=True))
                    self.last_shard_recoveries += 1
                    results[task.spec.index] = labels_ids
                    continue
                results[task.spec.index] = loaded
            else:
                results[task.spec.index] = output
        if shard_failures:
            raise ShardExecutionError(shard_failures, report)

        # Merge in plan order (fidelity-major, ascending design blocks): the
        # exact order the serial loop produces.
        labels: list[RichLabels] = []
        design_ids: list[int] = []
        for spec in plan:
            shard_labels, shard_ids = results[spec.index]
            labels.extend(shard_labels)
            design_ids.extend(shard_ids)

        metadata = {
            "device": config.device_name,
            "strategy": config.strategy,
            "num_designs": config.num_designs,
            "fidelities": list(config.fidelities),
            "seed": config.seed,
            "design_id_offset": int(config.design_id_offset or 0),
            "device_kwargs": dict(config.device_kwargs or {}),
            "engine": {
                fidelity: engine_tag(engine_for_fidelity(config.engine, fidelity))
                for fidelity in config.fidelities
            },
        }
        if config.wavelengths is not None:
            metadata["wavelengths"] = [float(w) for w in config.wavelengths]
        if config.chi3 is not None:
            metadata["chi3"] = float(config.chi3)
            if config.intensities is not None:
                metadata["intensities"] = [float(s) for s in config.intensities]
        return PhotonicDataset.from_labels(labels, design_ids, metadata=metadata)

    def _has_engine_instance(self) -> bool:
        engine = self.config.engine
        if isinstance(engine, SolverEngine):
            return True
        if isinstance(engine, dict):
            return any(isinstance(value, SolverEngine) for value in engine.values())
        return False


def generate_dataset(
    device_name: str,
    strategy: str,
    num_designs: int,
    fidelities: tuple[str, ...] = ("low",),
    seed: int = 0,
    with_gradient: bool = True,
    strategy_kwargs: dict | None = None,
    device_kwargs: dict | None = None,
    engine: SolverEngine | str | dict | None = None,
    workers: int = 1,
    shard_dir: str | None = None,
    wavelengths: tuple[float, ...] | None = None,
    chi3: float | None = None,
    intensities: tuple[float, ...] | None = None,
) -> PhotonicDataset:
    """One-call dataset generation (see :class:`DatasetGenerator`)."""
    config = GeneratorConfig(
        device_name=device_name,
        strategy=strategy,
        num_designs=num_designs,
        fidelities=fidelities,
        seed=seed,
        with_gradient=with_gradient,
        strategy_kwargs=strategy_kwargs,
        device_kwargs=device_kwargs,
        engine=engine,
        workers=workers,
        shard_dir=shard_dir,
        wavelengths=wavelengths,
        chi3=chi3,
        intensities=intensities,
    )
    return DatasetGenerator(config).generate()


# --------------------------------------------------------------------------- #
# command-line interface: python -m repro.data.generator
# --------------------------------------------------------------------------- #
def _parse_engine(value: str | None) -> str | dict | None:
    """Parse ``--engine``: a name, or a ``low=iterative,high=direct`` mapping."""
    if value is None or "=" not in value:
        return value
    mapping: dict[str, str] = {}
    for item in value.split(","):
        item = item.strip()
        if not item:
            continue
        fidelity, _, name = item.partition("=")
        if not fidelity or not name:
            raise argparse.ArgumentTypeError(
                f"bad engine mapping entry {item!r}; expected fidelity=engine"
            )
        mapping[fidelity.strip()] = name.strip()
    return mapping


def _parse_json_dict(value: str | None) -> dict | None:
    if value is None:
        return None
    parsed = json.loads(value)
    if not isinstance(parsed, dict):
        raise argparse.ArgumentTypeError(f"expected a JSON object, got {value!r}")
    return parsed


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.data.generator",
        description="Generate a labelled (multi-fidelity) photonic dataset.",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "examples:\n"
            "  # paired two-tier dataset, 4 workers, resumable shards\n"
            "  python -m repro.data.generator --fidelities low high \\\n"
            "      --engine low=iterative,high=direct --workers 4 --shard-dir shards\n"
            "  # rerun with --shard-dir and --resume (the default) to reuse\n"
            "  # finished shards; --no-resume forces recomputation\n"
            "  # label with a promoted surrogate checkpoint\n"
            "  python -m repro.data.generator --engine neural:bend_surrogate.npz\n"
        ),
    )
    parser.add_argument("--device", default="bending", help="benchmark device name")
    parser.add_argument(
        "--strategy",
        default="perturbed_opt_traj",
        help="sampling strategy (random, opt_traj, perturbed_opt_traj)",
    )
    parser.add_argument("--num-designs", type=int, default=32)
    parser.add_argument(
        "--fidelities", nargs="+", default=["low"], help="fidelity levels to simulate"
    )
    parser.add_argument(
        "--engine",
        type=_parse_engine,
        default=None,
        help=(
            'solver engine name ("direct", "iterative", "recycled", or a '
            'promoted surrogate "neural:<checkpoint.npz>"), or a per-fidelity '
            'mapping "low=iterative,high=direct"'
        ),
    )
    parser.add_argument(
        "--workers", type=int, default=1, help="worker processes (0 = all cores)"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--shard-size", type=int, default=8, help="designs per shard")
    parser.add_argument(
        "--shard-dir", default=None, help="directory for resumable shard artifacts"
    )
    parser.add_argument(
        "--factorization-store",
        default=None,
        help=(
            "directory of a cross-process factorization store shared by all "
            "workers (and by later runs over the same devices)"
        ),
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=array_backend.backend_names(),
        help=(
            "array backend workers configure at startup (default: numpy, or "
            "the REPRO_ARRAY_BACKEND environment variable)"
        ),
    )
    parser.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="reuse finished shard artifacts in --shard-dir",
    )
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help=(
            "per-shard deadline in seconds: a worker that exceeds it is "
            "killed and its shard retried on a fresh worker (default: none)"
        ),
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help=(
            "re-executions allowed per shard after a crash, timeout or "
            "error before it is reported as permanently failed"
        ),
    )
    parser.add_argument(
        "--retry-backoff",
        type=float,
        default=0.25,
        help="base retry delay in seconds (doubles per attempt, jittered)",
    )
    parser.add_argument(
        "--no-gradient",
        action="store_true",
        help="skip adjoint-gradient labels (forward-only dataset)",
    )
    parser.add_argument(
        "--wavelengths",
        nargs="+",
        type=float,
        default=None,
        metavar="UM",
        help=(
            "broadband mode: label every spec at each of these wavelengths "
            "(micrometres) instead of its own; forward-only, so requires "
            "--no-gradient.  With --engine fdtd one pulsed time-domain run "
            "per excitation covers the whole set"
        ),
    )
    parser.add_argument(
        "--chi3",
        type=float,
        default=None,
        help=(
            "nonlinear mode: label at the converged Kerr fixed point with "
            "this chi3 (eps_eff = eps + chi3*|E|^2 over the device's "
            "nonlinear-material map)"
        ),
    )
    parser.add_argument(
        "--intensities",
        nargs="+",
        type=float,
        default=None,
        metavar="SCALE",
        help=(
            "intensity axis of nonlinear runs (requires --chi3): label every "
            "spec at each of these source scales, intensity-major"
        ),
    )
    parser.add_argument(
        "--device-kwargs", type=_parse_json_dict, default=None, help="JSON object"
    )
    parser.add_argument(
        "--strategy-kwargs", type=_parse_json_dict, default=None, help="JSON object"
    )
    parser.add_argument("--output", "-o", default="dataset.npz", help="output .npz path")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    config = GeneratorConfig(
        device_name=args.device,
        strategy=args.strategy,
        num_designs=args.num_designs,
        fidelities=tuple(args.fidelities),
        with_gradient=not args.no_gradient,
        wavelengths=tuple(args.wavelengths) if args.wavelengths else None,
        chi3=args.chi3,
        intensities=tuple(args.intensities) if args.intensities else None,
        seed=args.seed,
        strategy_kwargs=args.strategy_kwargs,
        device_kwargs=args.device_kwargs,
        engine=args.engine,
        workers=args.workers,
        shard_size=args.shard_size,
        shard_dir=args.shard_dir,
        resume=args.resume,
        factorization_store=args.factorization_store,
        backend=args.backend,
        task_timeout=args.task_timeout,
        max_retries=args.max_retries,
        retry_backoff=args.retry_backoff,
    )
    generator = DatasetGenerator(config)
    start = time.perf_counter()
    dataset = generator.generate()
    elapsed = time.perf_counter() - start
    dataset.save(args.output)
    print(
        f"generated {len(dataset)} samples "
        f"({config.num_designs} designs x {len(config.fidelities)} fidelities) "
        f"in {elapsed:.1f}s with workers={config.workers} -> {args.output}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
