"""Multi-fidelity dataset generation.

The generator combines a device, a sampling strategy and a set of fidelity
levels, simulates every sampled design under every excitation spec and packs
the rich labels into a :class:`~repro.data.dataset.PhotonicDataset`.  When more
than one fidelity is requested, the *same* designs are simulated at every
fidelity so the dataset contains paired low/high-fidelity samples (linked by
``design_id``), which is what multi-fidelity model training consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import PhotonicDataset
from repro.data.labels import extract_labels_batch
from repro.data.sampling import DesignSample, SamplingStrategy, make_sampler
from repro.devices.factory import make_device
from repro.utils.numerics import resample_bilinear
from repro.utils.rng import get_rng


@dataclass
class GeneratorConfig:
    """Configuration of one dataset-generation run."""

    device_name: str = "bending"
    strategy: str = "perturbed_opt_traj"
    num_designs: int = 32
    fidelities: tuple[str, ...] = ("low",)
    with_gradient: bool = True
    seed: int = 0
    strategy_kwargs: dict | None = None
    device_kwargs: dict | None = None


class DatasetGenerator:
    """Generate labelled, optionally multi-fidelity datasets for one device."""

    def __init__(self, config: GeneratorConfig | None = None, **overrides):
        if config is None:
            config = GeneratorConfig()
        for key, value in overrides.items():
            if not hasattr(config, key):
                raise TypeError(f"unknown generator option {key!r}")
            setattr(config, key, value)
        self.config = config

    # -- sampling ------------------------------------------------------------------
    def _sampler(self) -> SamplingStrategy:
        return make_sampler(self.config.strategy, **(self.config.strategy_kwargs or {}))

    def _device(self, fidelity: str):
        return make_device(
            self.config.device_name, fidelity=fidelity, **(self.config.device_kwargs or {})
        )

    def sample_designs(self) -> list[DesignSample]:
        """Draw the design patterns (at the first / reference fidelity)."""
        rng = get_rng(self.config.seed)
        device = self._device(self.config.fidelities[0])
        sampler = self._sampler()
        return sampler.sample(device, self.config.num_designs, rng=rng)

    # -- generation -----------------------------------------------------------------
    def generate(self, designs: list[DesignSample] | None = None) -> PhotonicDataset:
        """Run all simulations and return the labelled dataset.

        Parameters
        ----------
        designs:
            Pre-sampled designs (at the reference fidelity); drawn with the
            configured strategy if omitted.
        """
        config = self.config
        if designs is None:
            designs = self.sample_designs()

        labels = []
        design_ids = []
        reference_device = self._device(config.fidelities[0])
        for fidelity in config.fidelities:
            device = self._device(fidelity)
            for design_id, design in enumerate(designs):
                density = design.density
                if device.design_shape != reference_device.design_shape:
                    density = np.clip(
                        resample_bilinear(density, device.design_shape), 0.0, 1.0
                    )
                # All specs of the design in one batched, factorize-once call.
                design_labels = extract_labels_batch(
                    device,
                    density,
                    with_gradient=config.with_gradient,
                    fidelity=fidelity,
                    stage=design.stage,
                )
                labels.extend(design_labels)
                design_ids.extend([design_id] * len(design_labels))

        metadata = {
            "device": config.device_name,
            "strategy": config.strategy,
            "num_designs": config.num_designs,
            "fidelities": list(config.fidelities),
            "seed": config.seed,
            "device_kwargs": dict(config.device_kwargs or {}),
        }
        return PhotonicDataset.from_labels(labels, design_ids, metadata=metadata)


def generate_dataset(
    device_name: str,
    strategy: str,
    num_designs: int,
    fidelities: tuple[str, ...] = ("low",),
    seed: int = 0,
    with_gradient: bool = True,
    strategy_kwargs: dict | None = None,
    device_kwargs: dict | None = None,
) -> PhotonicDataset:
    """One-call dataset generation (see :class:`DatasetGenerator`)."""
    config = GeneratorConfig(
        device_name=device_name,
        strategy=strategy,
        num_designs=num_designs,
        fidelities=fidelities,
        seed=seed,
        with_gradient=with_gradient,
        strategy_kwargs=strategy_kwargs,
        device_kwargs=device_kwargs,
    )
    return DatasetGenerator(config).generate()
