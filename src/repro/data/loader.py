"""Streaming training data from shard artifacts.

:class:`ShardDataLoader` turns the resumable ``.npz`` shard artifacts written
by the sharded dataset generator (:mod:`repro.data.shards`) into a training
data source without ever materializing the merged dataset: shards are loaded
lazily through a small LRU cache, so peak memory is bounded by O(shard), not
O(dataset).  Three contracts make the loader a drop-in for the in-memory
:class:`~repro.data.dataset.PhotonicDataset` inside the trainer:

* **Bit-identical samples** — shard artifacts round-trip losslessly and the
  loader applies the exact :meth:`PhotonicDataset.from_labels` transforms
  (same ``field_scale``, computed with the same median over the same values),
  so every ``(inputs, target)`` pair equals the merged dataset's byte for
  byte.
* **Bit-identical iteration** — :meth:`batches` consumes the random stream
  exactly like ``PhotonicDataset.batches`` (one shuffle of an N-index array
  per epoch), so a trainer driven by the loader produces the same loss curves
  as one driven by the merged dataset for the same seed.
* **Prefetch never changes results** — background prefetch
  (:class:`repro.utils.parallel.Prefetcher`) only warms the shard cache along
  the already-fixed access order; any ``prefetch=`` worker count yields the
  same batches.

Shards are ordered the way :func:`repro.data.shards.plan_shards` merges them
(fidelity-major, ascending design blocks), reconstructed from the artifact
content: pass ``fidelities=`` in the generation config's order (the default
sorts fidelity names, which matches configs like ``("high", "low")`` only by
accident — always pass the config order when bit-identity to a merged dataset
matters).

The loader also supports *growing* shard directories
(:meth:`ShardDataLoader.refresh`): active-learning appends fold in without
touching existing samples, and per-sample acquisition weights travel from the
shard metadata to the trainer (:meth:`ShardDataLoader.sample_weight_array`).
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.data.dataset import PhotonicDataset, Sample, split_shape_runs
from repro.data.shards import SHARD_FORMAT_VERSION, load_shard
from repro.utils.parallel import Prefetcher
from repro.utils.rng import get_rng

__all__ = ["LoaderStats", "ShardDataLoader"]


@dataclass
class LoaderStats:
    """What a :class:`ShardDataLoader` actually did, for tests and tuning.

    ``max_resident`` is the largest number of decoded shard payloads held in
    the cache at any time.  It is bounded by
    ``max(cache_shards, shards touched by one batch)`` — a batch's shards are
    pinned together while it is gathered — which is O(shard) in the dataset
    size, never O(dataset); asserted in tests with a shard count far above
    the cache size.
    """

    shard_loads: int = 0
    cache_hits: int = 0
    max_resident: int = 0


@dataclass(frozen=True)
class _SampleRef:
    """Index entry locating one sample inside the shard set."""

    shard: int
    local: int
    fidelity: str
    design_id: int
    shape: tuple[int, int]
    transmission: float
    weight: float


def _shard_plan_key(header: dict, name: str, rank: dict) -> tuple:
    """Sort key reconstructing the generator's merge order from shard content.

    Fidelity-major (by the loader's fidelity order), then ascending design
    blocks, file name as the tiebreaker.  Shared by construction and
    :meth:`ShardDataLoader.refresh` so appended shards are ordered among
    themselves exactly the way a fresh loader would order them.
    """
    records = header["records"]
    return (
        min(rank[r["fidelity"]] for r in records),
        min(int(r["design_id"]) for r in records),
        name,
    )


def _scan_current_shards(paths: list[Path]) -> tuple[list[Path], list[tuple], list[Path]]:
    """Scan artifacts, keeping only current-format ones.

    Older-format artifacts legitimately linger in resumed directories: the
    generator rejects them (version check), rewrites the shard under a *new*
    fingerprint file name and never deletes files it did not write — so a
    pre-upgrade ``shard_dir`` holds both generations side by side.  Indexing
    the stale files alongside their rewritten versions would trip the
    mixed-run check; skipping them here is what makes the "regenerate and
    keep going" upgrade path work.  Returns ``(kept paths, their scans,
    ignored paths)``.
    """
    kept: list[Path] = []
    scans: list[tuple] = []
    ignored: list[Path] = []
    for path in paths:
        scan = _scan_shard(path)
        if scan[0].get("version") == SHARD_FORMAT_VERSION:
            kept.append(path)
            scans.append(scan)
        else:
            ignored.append(path)
    return kept, scans, ignored


def _scan_shard(path: Path) -> tuple[dict, list[float], list[tuple[int, int]]]:
    """One bounded-memory pass over a shard: header + per-label field stats.

    Returns the parsed JSON header, the per-label ``std(|ez|)`` values that
    feed the dataset-wide ``field_scale`` median, and the per-label grid
    shapes.  Only one shard's arrays are decoded at a time.
    """
    with np.load(path, allow_pickle=False) as archive:
        header = json.loads(bytes(archive["__header__"].tobytes()).decode("utf-8"))
        stats: list[float] = []
        shapes: list[tuple[int, int]] = []
        for i in range(len(header.get("records", []))):
            ez = archive[f"ez_{i}"]
            stats.append(float(np.std(np.abs(ez))))
            shapes.append(tuple(ez.shape))
    return header, stats, shapes


class ShardDataLoader:
    """Iterate shard artifacts lazily with bounded memory.

    Parameters
    ----------
    shard_paths:
        The shard ``.npz`` files of one generation run (see
        :meth:`from_directory` for the glob-a-directory constructor).
    fidelities:
        Fidelity names in the generation config's order; defines the
        fidelity-major sample order.  Defaults to the sorted distinct names
        found in the shards.
    field_scale:
        Global field scale applied to the targets.  Computed exactly like
        :meth:`PhotonicDataset.from_labels` (median of per-label
        ``std(|ez|)`` over *all* shards) when omitted.
    cache_shards:
        Decoded shards kept in the LRU cache (the memory bound; at least 1).
    prefetch:
        Background prefetch threads warming upcoming shards during
        :meth:`batches` iteration; 0 loads synchronously.  Never changes the
        batches, only their latency.

    Examples
    --------
    Stream a generation run into training, then keep growing it::

        loader = ShardDataLoader.from_directory("shards", fidelities=("low", "high"))
        train, test = loader.split(train_fraction=0.8, rng=0)
        Trainer(model, data=train, test_set=test, epochs=30).train()

        # ... an active-learning round appends new shard artifacts ...
        loader.refresh()          # picks them up; existing samples untouched

    Per-sample metadata from the scan pass (no shard loads):
    :meth:`fidelity_array`, :meth:`design_id_array`,
    :meth:`transmission_array`, :meth:`sample_weight_array`.
    """

    def __init__(
        self,
        shard_paths,
        fidelities: tuple[str, ...] | list[str] | None = None,
        field_scale: float | None = None,
        cache_shards: int = 2,
        prefetch: int = 0,
    ):
        candidates = [Path(p) for p in shard_paths]
        if not candidates:
            raise ValueError("no shard paths given")
        if cache_shards < 1:
            raise ValueError(f"cache_shards must be at least 1, got {cache_shards}")
        self.cache_shards = int(cache_shards)
        self.prefetch = int(prefetch)
        self.stats = LoaderStats()
        self._cache: OrderedDict[int, PhotonicDataset] = OrderedDict()

        # Scan pass: headers + field statistics, one shard resident at a time.
        # Stale older-format artifacts are skipped (see _scan_current_shards).
        paths, scans, ignored = _scan_current_shards(candidates)
        self._ignored_paths = set(ignored)
        if not paths:
            raise ValueError(
                f"none of the {len(candidates)} shard artifacts use the "
                f"current format version {SHARD_FORMAT_VERSION}; regenerate "
                "the dataset into this directory (stale older-format files "
                "are ignored, not loaded)"
            )
        seen = {record["fidelity"] for header, _, _ in scans for record in header["records"]}
        if fidelities is None:
            fidelities = tuple(sorted(seen))
        else:
            fidelities = tuple(fidelities)
            unknown = seen - set(fidelities)
            if unknown:
                raise ValueError(
                    f"shards contain fidelities {sorted(unknown)} missing from the "
                    f"requested order {list(fidelities)}"
                )
        rank = {name: position for position, name in enumerate(fidelities)}
        self.fidelities = fidelities

        order = sorted(
            range(len(paths)),
            key=lambda i: _shard_plan_key(scans[i][0], paths[i].name, rank),
        )
        self._paths = [paths[i] for i in order]

        if field_scale is None:
            stats = [value for i in order for value in scans[i][1]]
            field_scale = float(np.median(stats) or 1.0) if stats else 1.0
        self.field_scale = float(field_scale)

        self._refs: list[_SampleRef] = []
        self._design_owner: dict[tuple[str, int], int] = {}
        self._is_view = False
        for shard, scan_index in enumerate(order):
            header, _, shapes = scans[scan_index]
            self._index_shard(shard, header, shapes)
        self.metadata: dict = {
            "num_shards": len(self._paths),
            "fidelities": list(fidelities),
        }

    def _index_shard(self, shard: int, header: dict, shapes) -> None:
        """Append one scanned shard's samples to the index.

        Rejects a ``(fidelity, design_id)`` pair already owned by another
        shard: one generation run puts all samples of a (fidelity, design) in
        exactly one shard, so the same pair appearing in two files means the
        directory mixes shards of different runs (e.g. a reused shard_dir
        after a config change) — training on that interleaved mix would be
        silent corruption.  Appending runs (active learning) stay legal
        because they shift ``design_id_offset`` so their ids never collide.
        """
        for local, record in enumerate(header["records"]):
            fidelity = record["fidelity"]
            design_id = int(record["design_id"])
            owner = self._design_owner.setdefault((fidelity, design_id), shard)
            if owner != shard:
                raise ValueError(
                    f"shards {self._paths[owner].name} and "
                    f"{self._paths[shard].name} both contain design "
                    f"{design_id} at fidelity {fidelity!r}; the directory "
                    "mixes artifacts of different generation runs — use a "
                    "clean shard_dir per config (or delete stale shards)"
                )
            self._refs.append(
                _SampleRef(
                    shard=shard,
                    local=local,
                    fidelity=fidelity,
                    design_id=design_id,
                    shape=shapes[local],
                    transmission=float(sum(record["transmissions"].values())),
                    weight=float(record.get("extras", {}).get("sample_weight", 1.0)),
                )
            )

    @classmethod
    def from_directory(
        cls, shard_dir: str | Path, fidelities=None, **kwargs
    ) -> "ShardDataLoader":
        """Loader over every ``shard_*.npz`` artifact in a directory.

        The directory must hold the artifacts of a single generation run
        (one config); mixing runs silently interleaves their samples.
        """
        shard_dir = Path(shard_dir)
        paths = sorted(shard_dir.glob("shard_*.npz"))
        if not paths:
            raise FileNotFoundError(f"no shard artifacts (shard_*.npz) in {shard_dir}")
        loader = cls(paths, fidelities=fidelities, **kwargs)
        loader.metadata["shard_dir"] = str(shard_dir)
        return loader

    # -- container protocol --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._refs)

    def __getitem__(self, index: int) -> Sample:
        ref = self._refs[index]
        return self._shard_dataset(ref.shard)[ref.local]

    # -- index arrays (scan-pass metadata, no shard loads) -------------------------
    def fidelity_array(self) -> np.ndarray:
        """Per-sample fidelity tags, ``(N,)``."""
        return np.array([ref.fidelity for ref in self._refs])

    def design_id_array(self) -> np.ndarray:
        """Per-sample design ids, ``(N,)``."""
        return np.array([ref.design_id for ref in self._refs], dtype=int)

    def transmission_array(self) -> np.ndarray:
        """Scalar transmission labels, ``(N,)`` (from the scan pass)."""
        return np.array([ref.transmission for ref in self._refs])

    def sample_weight_array(self) -> np.ndarray:
        """Per-sample loss weights, ``(N,)`` (from shard ``extras`` metadata).

        1.0 everywhere for plain generation runs; active-learning appends
        carry their acquisition weight here, and the trainer picks the array
        up automatically for per-sample loss weighting.
        """
        return np.array([ref.weight for ref in self._refs])

    def sample_shapes(self) -> list[tuple[int, int]]:
        """Per-sample grid shapes."""
        return [ref.shape for ref in self._refs]

    # -- views ---------------------------------------------------------------------
    def restrict(self, fidelities=None, design_ids=None) -> "ShardDataLoader":
        """A filtered view (by fidelity and/or design id) sharing the cache.

        Mirrors ``PhotonicDataset.filter``: the sample order and the
        ``field_scale`` of the full run are preserved, only the index is
        narrowed — so a restricted loader matches the correspondingly
        filtered merged dataset bit for bit.
        """
        keep_fidelity = None if fidelities is None else set(fidelities)
        keep_design = None if design_ids is None else {int(d) for d in design_ids}
        view = object.__new__(ShardDataLoader)
        view.__dict__.update(self.__dict__)
        view.metadata = dict(self.metadata)
        view._is_view = True
        view._refs = [
            ref
            for ref in self._refs
            if (keep_fidelity is None or ref.fidelity in keep_fidelity)
            and (keep_design is None or ref.design_id in keep_design)
        ]
        return view

    def split(self, train_fraction: float = 0.7, rng=None) -> tuple["ShardDataLoader", "ShardDataLoader"]:
        """Design-level train/test split (the hierarchical MAPS-Train split).

        Consumes the random stream exactly like
        :func:`repro.data.dataset.split_dataset`, so the same seed produces
        the same design partition as splitting the merged dataset.
        """
        if not 0.0 < train_fraction <= 1.0:
            raise ValueError(f"train fraction must be in (0, 1], got {train_fraction}")
        design_ids = sorted({ref.design_id for ref in self._refs})
        order = np.array(design_ids)
        get_rng(rng).shuffle(order)
        n_train = int(round(train_fraction * len(order)))
        train_ids = set(order[:n_train].tolist())
        test_ids = set(order[n_train:].tolist())
        return self.restrict(design_ids=train_ids), self.restrict(design_ids=test_ids)

    # -- growth --------------------------------------------------------------------
    def refresh(self, shard_paths=None) -> int:
        """Pick up shard artifacts that appeared since the loader was built.

        The active-learning append path: a generation run wrote new shards
        into the directory (with a ``design_id_offset`` past the existing
        ids), and ``refresh()`` folds them into the index *without touching
        anything already there* —

        * pre-existing samples keep their indices and stay byte-identical
          (the ``field_scale`` is frozen at construction; recomputing the
          median over the grown set would silently rescale every old target
          and invalidate the model trained on them),
        * new samples are appended after the existing ones, ordered among
          themselves the way a fresh loader would order them,
        * the stale-mix check keeps protecting the growing directory: a new
          shard that re-labels an existing ``(fidelity, design_id)`` pair is
          rejected as a mixed-run artifact, exactly like at construction.

        Parameters
        ----------
        shard_paths:
            Explicit paths to consider.  Defaults to re-globbing the
            directory the loader was built from (:meth:`from_directory`);
            loaders built from an explicit path list must pass this.

        Returns
        -------
        int
            Number of samples appended (0 when nothing new showed up).

        Examples
        --------
        >>> loader = ShardDataLoader.from_directory("shards")   # doctest: +SKIP
        >>> DatasetGenerator(replace(config, design_id_offset=len(ids),
        ...                          shard_dir="shards")).generate()  # doctest: +SKIP
        >>> loader.refresh()                                    # doctest: +SKIP
        8
        """
        if self._is_view:
            raise ValueError(
                "refresh() must be called on the root loader, not a "
                "restrict()/split() view — refresh the root and re-derive "
                "the views"
            )
        if shard_paths is None:
            shard_dir = self.metadata.get("shard_dir")
            if shard_dir is None:
                raise ValueError(
                    "this loader was built from an explicit path list; pass "
                    "shard_paths= to refresh it"
                )
            shard_paths = sorted(Path(shard_dir).glob("shard_*.npz"))
        known = set(self._paths) | self._ignored_paths
        candidates = [p for p in (Path(p) for p in shard_paths) if p not in known]
        if not candidates:
            return 0

        new_paths, scans, ignored = _scan_current_shards(candidates)
        self._ignored_paths.update(ignored)
        if not new_paths:
            return 0
        seen = {
            record["fidelity"] for header, _, _ in scans for record in header["records"]
        }
        unknown = seen - set(self.fidelities)
        if unknown:
            raise ValueError(
                f"new shards contain fidelities {sorted(unknown)} missing from "
                f"the loader's order {list(self.fidelities)}; build a fresh "
                "loader to change the fidelity set"
            )
        rank = {name: position for position, name in enumerate(self.fidelities)}

        # Validate before mutating anything, so a stale-mix rejection leaves
        # the loader exactly as it was.
        incoming: dict[tuple[str, int], Path] = {}
        for scan_index, (header, _, _) in enumerate(scans):
            for record in header["records"]:
                pair = (record["fidelity"], int(record["design_id"]))
                # Repeats inside one shard are normal (one label per spec);
                # only a pair owned by a *different* file is a mixed run.
                conflict = None
                if pair in self._design_owner:
                    conflict = self._paths[self._design_owner[pair]].name
                elif incoming.get(pair, new_paths[scan_index]) != new_paths[scan_index]:
                    conflict = incoming[pair].name
                if conflict is not None:
                    raise ValueError(
                        f"shards {conflict} and {new_paths[scan_index].name} "
                        f"both contain design {pair[1]} at fidelity "
                        f"{pair[0]!r}; the directory mixes artifacts of "
                        "different generation runs — use a clean shard_dir "
                        "per config (or delete stale shards)"
                    )
                incoming.setdefault(pair, new_paths[scan_index])

        appended = 0
        for scan_index in sorted(
            range(len(new_paths)),
            key=lambda i: _shard_plan_key(scans[i][0], new_paths[i].name, rank),
        ):
            header, _, shapes = scans[scan_index]
            shard = len(self._paths)
            self._paths.append(new_paths[scan_index])
            self._index_shard(shard, header, shapes)
            appended += len(header["records"])
        self.metadata["num_shards"] = len(self._paths)
        return appended

    # -- shard cache -----------------------------------------------------------------
    def _decode(self, payload: tuple) -> PhotonicDataset:
        labels, design_ids = payload
        return PhotonicDataset.from_labels(
            labels, design_ids, field_scale=self.field_scale
        )

    def _load_payload(self, shard: int) -> tuple:
        return load_shard(self._paths[shard])

    def _insert(
        self, shard: int, dataset: PhotonicDataset, capacity: int | None = None
    ) -> PhotonicDataset:
        if capacity is None:
            capacity = self.cache_shards
        while len(self._cache) >= capacity:
            self._cache.popitem(last=False)
        self._cache[shard] = dataset
        self.stats.shard_loads += 1
        self.stats.max_resident = max(self.stats.max_resident, len(self._cache))
        return dataset

    def _shard_dataset(self, shard: int) -> PhotonicDataset:
        """The decoded shard, via the LRU cache (loads synchronously on miss)."""
        cached = self._cache.get(shard)
        if cached is not None:
            self._cache.move_to_end(shard)
            self.stats.cache_hits += 1
            return cached
        return self._insert(shard, self._decode(self._load_payload(shard)))

    def cache_clear(self) -> None:
        """Drop every decoded shard (keeps the index and statistics)."""
        self._cache.clear()

    # -- batched access ----------------------------------------------------------------
    def gather(self, indices) -> tuple[np.ndarray, np.ndarray]:
        """``(inputs, targets)`` stacks for an index selection, in order.

        Samples are fetched shard by shard (each shard decoded once per call)
        but placed at their original positions, so the stacks equal the
        merged dataset's ``gather`` exactly.
        """
        indices = np.asarray(indices, dtype=int)
        inputs: list = [None] * len(indices)
        targets: list = [None] * len(indices)
        by_shard: dict[int, list[int]] = {}
        for position, index in enumerate(indices):
            by_shard.setdefault(self._refs[index].shard, []).append(position)
        for shard, positions in by_shard.items():
            dataset = self._shard_dataset(shard)
            for position in positions:
                sample = dataset[self._refs[indices[position]].local]
                inputs[position] = sample.inputs
                targets[position] = sample.target
        return np.stack(inputs, axis=0), np.stack(targets, axis=0)

    def _chunk_shards(self, chunk: np.ndarray) -> list[int]:
        """Distinct shards a chunk touches, in first-use order."""
        shards: list[int] = []
        for index in chunk:
            shard = self._refs[index].shard
            if shard not in shards:
                shards.append(shard)
        return shards

    def _ensure_chunk(
        self, chunk: np.ndarray, prefetcher: Prefetcher | None, stash: dict
    ) -> None:
        """Make every shard a chunk needs resident before gathering it.

        The effective capacity is raised to the chunk's own shard count so an
        insert can never evict a shard the *same* chunk still needs — the
        invariant that keeps :meth:`_plan_loads`'s cache simulation (and with
        it the prefetch order) exact.  Prefetched payloads carry their shard
        id; in the normal case they arrive exactly in miss order.  If the
        consumer mutated the cache mid-iteration (direct ``__getitem__`` /
        ``gather`` calls) the plan can diverge: at most one payload is then
        pulled per miss, mismatches go to a depth-bounded stash (oldest
        dropped and reloaded on demand), and the needed shard is taken from
        the stash or loaded synchronously — prefetch can reorder work, never
        results, and memory stays bounded by cache + lookahead window.
        """
        shards = self._chunk_shards(chunk)
        capacity = max(self.cache_shards, len(shards))
        for shard in shards:
            cached = self._cache.get(shard)
            if cached is not None:
                # Planning touch only — the hit is counted when gather()
                # actually reads the shard, so stats stay one-per-access.
                self._cache.move_to_end(shard)
                continue
            payload = stash.pop(shard, None)
            if payload is None and prefetcher is not None and len(prefetcher):
                fetched_shard, fetched = prefetcher.next()
                if fetched_shard == shard:
                    payload = fetched
                else:
                    stash[fetched_shard] = fetched
                    while len(stash) > self.prefetch + 1:
                        stash.pop(next(iter(stash)))
            if payload is None:
                payload = self._load_payload(shard)
            self._insert(shard, self._decode(payload), capacity)

    def _plan_loads(self, chunks: list[np.ndarray]) -> list[int]:
        """Simulate the LRU cache over a chunk sequence: the exact miss order.

        Mirrors :meth:`_ensure_chunk` (including the per-chunk capacity
        raise) step for step; prefetch workers preload precisely this
        sequence, so background loading can never diverge from what
        synchronous iteration would do.
        """
        resident = list(self._cache.keys())
        loads: list[int] = []
        for chunk in chunks:
            shards = self._chunk_shards(chunk)
            capacity = max(self.cache_shards, len(shards))
            for shard in shards:
                if shard in resident:
                    resident.remove(shard)
                    resident.append(shard)
                    continue
                loads.append(shard)
                while len(resident) >= capacity:
                    resident.pop(0)
                resident.append(shard)
        return loads

    def stream(self, chunks):
        """Yield ``(inputs, targets)`` stacks for an explicit chunk sequence.

        The prefetch-aware core of :meth:`batches`, exposed so callers that
        plan their own batch composition (e.g. the trainer's fidelity
        curricula) still get background shard warming: the whole chunk
        sequence is known up front, so the LRU miss order can be simulated
        and preloaded exactly like shuffled iteration.
        """
        chunks = [np.asarray(chunk, dtype=int) for chunk in chunks]
        prefetcher = None
        stash: dict[int, tuple] = {}
        if self.prefetch > 0:
            loads = self._plan_loads(chunks)
            prefetcher = Prefetcher(
                lambda shard: (shard, self._load_payload(shard)),
                loads,
                workers=self.prefetch,
            )
        try:
            for chunk in chunks:
                self._ensure_chunk(chunk, prefetcher, stash)
                yield self.gather(chunk)
        finally:
            if prefetcher is not None:
                prefetcher.close()

    def batches(self, batch_size: int, shuffle: bool = True, rng=None):
        """Yield ``(inputs, targets, indices)`` mini-batches, streaming shards.

        Consumes the random stream exactly like
        ``PhotonicDataset.batches`` — one shuffle of an ``arange(N)`` per
        call — and applies the same shape-boundary chunk splitting, so the
        loader path is bit-identical to the in-memory path for the same seed.
        """
        if batch_size <= 0:
            raise ValueError(f"batch size must be positive, got {batch_size}")
        order = np.arange(len(self._refs))
        if shuffle:
            get_rng(rng).shuffle(order)
        shapes = self.sample_shapes()
        chunks = [
            sub
            for start in range(0, len(order), batch_size)
            for sub in split_shape_runs(order[start : start + batch_size], shapes)
        ]
        for chunk, (inputs, targets) in zip(chunks, self.stream(chunks)):
            yield inputs, targets, chunk

    # -- materialization (tests / small datasets) ----------------------------------
    def materialize(self) -> PhotonicDataset:
        """Load *everything* into one in-memory dataset (O(dataset) memory).

        For tests and small runs; the result is bit-identical to the merged
        dataset the generator would have returned for the same shards.
        """
        samples = [self[i] for i in range(len(self))]
        return PhotonicDataset(
            samples, field_scale=self.field_scale, metadata=dict(self.metadata)
        )
