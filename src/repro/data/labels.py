"""Rich label extraction for dataset samples.

For every (design, excitation) pair MAPS-Data stores much more than the field
map: transmission/reflection/radiation figures, S-parameters, the adjoint
gradient under the device objective, the injected source and the Maxwell
residual.  Rich labels let one dataset serve many learning tasks (black-box
S-parameter regression, field prediction, gradient supervision,
physics-informed residual losses).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.devices.base import Device, TargetSpec
from repro.fdfd.engine import SolverEngine
from repro.fdfd.simulation import Simulation
from repro.invdes.adjoint import (
    FieldBackend,
    NumericalFieldBackend,
    evaluate_specs,
    simulation_group_key,
)


@dataclass
class RichLabels:
    """All labels attached to one (design, excitation) sample."""

    device_name: str
    spec_index: int
    wavelength: float
    dl: float
    density: np.ndarray
    eps_r: np.ndarray
    source: np.ndarray
    ez: np.ndarray
    hx: np.ndarray
    hy: np.ndarray
    transmissions: dict[str, float]
    s_params: dict[str, complex]
    objective_value: float
    figure_of_merit: float
    radiation: float
    adjoint_gradient: np.ndarray | None = None
    maxwell_residual: float = 0.0
    fidelity: str = "low"
    stage: str = "unknown"
    extras: dict[str, float] = field(default_factory=dict)

    @property
    def grid_shape(self) -> tuple[int, int]:
        return self.ez.shape

    def total_transmission(self) -> float:
        return float(sum(self.transmissions.values()))


def extract_labels_batch(
    device: Device,
    density: np.ndarray,
    specs: list[TargetSpec | int] | None = None,
    with_gradient: bool = True,
    fidelity: str | None = None,
    stage: str = "unknown",
    backend: FieldBackend | None = None,
    engine: SolverEngine | str | None = None,
    wavelengths=None,
    nonlinearity=None,
    intensities=None,
) -> list[RichLabels]:
    """Simulate one design under many excitation specs and extract all labels.

    All specs of the design are evaluated through the batched adjoint path
    (:func:`repro.invdes.adjoint.evaluate_specs`): specs sharing a wavelength
    and device state are solved against one factorization, forward and adjoint
    right-hand sides stacked into single multi-RHS solves.  This is how the
    dataset generator labels every excitation of a design for the cost of one
    factorization per operator.

    Parameters
    ----------
    device:
        The benchmark device (determines grid, ports and objective).
    density:
        Design density on the design region.
    specs:
        Excitation specs, or their indices in ``device.specs``; all device
        specs by default.
    with_gradient:
        Include the adjoint gradient of the device objective (adds one
        back-substitution per sample to the batch).
    fidelity:
        Fidelity tag stored with the samples (defaults to the device fidelity).
    stage:
        Free-form tag describing where the design came from (e.g.
        ``"random"``, ``"opt-traj:12"``, ``"perturbed"``).
    backend:
        Field backend used for the solves (engine-backed numerical default).
    engine:
        Solver engine or registry name (``"direct"``, ``"iterative"``, ...)
        selecting the fidelity tier of the default numerical backend.
        Mutually exclusive with ``backend``.
    wavelengths:
        Broadband mode: label every spec at each of these wavelengths
        (overriding the specs' own), wavelength-major, forward-only
        (``with_gradient`` must be False).  With ``engine="fdtd"`` one pulsed
        time-domain run per excitation serves all wavelengths; any other
        engine solves once per wavelength (see
        :func:`repro.invdes.adjoint.evaluate_specs`).
    nonlinearity:
        A :class:`~repro.fdfd.nonlinear.KerrNonlinearity`: label the specs at
        the *converged Kerr fixed point* instead of the linear solution.  The
        recorded Maxwell residual is the nonlinear one from the fixed-point
        iteration, and every label carries ``chi3``, ``source_scale`` and
        iteration counts in :attr:`RichLabels.extras` so surrogates can
        condition on the intensity axis.
    intensities:
        Intensity axis (requires ``nonlinearity``): label every spec at each
        of these source scales (multiplying ``nonlinearity.source_scale`` and
        any per-spec ``power`` state), intensity-major — the nonlinear
        analogue of ``wavelengths``.
    """
    if backend is None:
        backend = NumericalFieldBackend(engine=engine)
    elif engine is not None:
        raise ValueError("pass either backend or engine, not both")
    if wavelengths is not None and with_gradient:
        raise ValueError("broadband labels are forward-only; pass with_gradient=False")
    if intensities is not None and nonlinearity is None:
        raise ValueError("intensities is the nonlinear sweep axis; pass nonlinearity too")
    if nonlinearity is not None and wavelengths is not None:
        raise ValueError("broadband and nonlinear labels cannot be combined")
    if specs is None:
        specs = list(range(len(device.specs)))
    resolved: list[tuple[int, TargetSpec]] = []
    for spec in specs:
        if isinstance(spec, int):
            resolved.append((spec, device.specs[spec]))
        else:
            resolved.append((device.specs.index(spec), spec))

    if nonlinearity is None:
        evaluations = evaluate_specs(
            device,
            density,
            specs=[spec for _, spec in resolved],
            backend=backend,
            compute_gradient=with_gradient,
            wavelengths=wavelengths,
        )
        nonlinearity_by_eval = [None] * len(evaluations)
    else:
        # Intensity-major sweep over source scales, the nonlinear analogue of
        # the wavelength axis (a single evaluation when intensities is None).
        scales = [1.0] if intensities is None else [float(s) for s in intensities]
        evaluations = []
        nonlinearity_by_eval = []
        for s in scales:
            scaled = nonlinearity.with_scale(nonlinearity.source_scale * s)
            chunk = evaluate_specs(
                device,
                density,
                specs=[spec for _, spec in resolved],
                backend=backend,
                compute_gradient=with_gradient,
                nonlinearity=scaled,
            )
            evaluations.extend(chunk)
            nonlinearity_by_eval.extend([scaled] * len(chunk))

    # Broadband/intensity evaluations come back axis-major (all specs at the
    # first wavelength or intensity, then all at the second, ...); replicate
    # the (spec_index, spec) pairing accordingly.  Each evaluation's spec
    # carries its actual wavelength, which is what the labels below record.
    reps = 1 if not resolved else len(evaluations) // len(resolved)
    expanded = [pair for _ in range(reps) for pair in resolved]

    # Full-grid permittivities and residual simulations are shared across the
    # specs of a design: one per device state / (wavelength, state) pair.
    eps_by_state: dict[tuple, np.ndarray] = {}
    sim_by_key: dict[tuple, object] = {}

    labels = []
    for (spec_index, _), evaluation, eval_nl in zip(
        expanded, evaluations, nonlinearity_by_eval
    ):
        spec = evaluation.spec
        result = evaluation.result
        sim_key = simulation_group_key(spec)
        state_key = sim_key[1]
        eps_r = eps_by_state.get(state_key)
        if eps_r is None:
            eps_r = device.apply_state(device.eps_with_design(density), spec.state)
            eps_by_state[state_key] = eps_r

        # Figure of merit restricted to this spec, normalized like
        # Device.figure_of_merit.
        positive = max(sum(w for w in spec.port_weights.values() if w > 0), 1e-12)
        weighted = sum(
            w * result.transmissions.get(p, 0.0) for p, w in spec.port_weights.items()
        )
        fom = float(weighted / positive)

        extras: dict[str, float] = {}
        if eval_nl is not None:
            # The linear operator does not annihilate a Kerr solution; the
            # meaningful residual is the nonlinear one the fixed point
            # converged, tracked by the solve itself.
            stats = evaluation.nonlinear_stats
            residual = float(stats.residuals[-1]) if stats.residuals else 0.0
            chi3_value = eval_nl.chi3 if eval_nl.chi3 is not None else device.chi3
            extras = {
                "chi3": float(chi3_value),
                "source_scale": float(spec.state.get("power", 1.0)) * eval_nl.source_scale,
                "nonlinear_iterations": float(stats.iterations),
                "nonlinear_inner_solves": float(stats.inner_solves),
            }
        else:
            sim = sim_by_key.get(sim_key)
            if sim is None:
                sim = Simulation(
                    device.grid,
                    eps_r,
                    spec.wavelength,
                    device.geometry.ports,
                    engine=backend.engine,
                )
                sim_by_key[sim_key] = sim
            residual = sim.maxwell_residual(result)

        labels.append(
            RichLabels(
                device_name=device.name,
                spec_index=spec_index,
                wavelength=spec.wavelength,
                dl=device.dl,
                density=np.asarray(density, dtype=float).copy(),
                eps_r=np.asarray(eps_r, dtype=float),
                source=result.source,
                ez=result.ez,
                hx=result.hx,
                hy=result.hy,
                transmissions=dict(result.transmissions),
                s_params=dict(result.s_params),
                objective_value=evaluation.objective_value,
                figure_of_merit=fom,
                radiation=result.radiation,
                adjoint_gradient=evaluation.grad_density if with_gradient else None,
                maxwell_residual=residual,
                fidelity=fidelity if fidelity is not None else device.fidelity,
                stage=stage,
                extras=extras,
            )
        )
    return labels


def extract_labels(
    device: Device,
    density: np.ndarray,
    spec: TargetSpec | int = 0,
    with_gradient: bool = True,
    fidelity: str | None = None,
    stage: str = "unknown",
    backend: FieldBackend | None = None,
    engine: SolverEngine | str | None = None,
) -> RichLabels:
    """Labels for a single (design, excitation) pair (see :func:`extract_labels_batch`)."""
    return extract_labels_batch(
        device,
        density,
        specs=[spec],
        with_gradient=with_gradient,
        fidelity=fidelity,
        stage=stage,
        backend=backend,
        engine=engine,
    )[0]


def standardize_input(
    eps_r: np.ndarray,
    source: np.ndarray,
    wavelength: float,
    dl: float,
    eps_max: float = 12.25,
) -> np.ndarray:
    """Standardized model input of MAPS-Train.

    The models all consume the same representation: four real channels

    1. relative permittivity scaled to ``[0, 1]``,
    2. real part of the source current (unit max-amplitude),
    3. imaginary part of the source current,
    4. a constant channel encoding the grid resolution in wavelengths
       (``dl / wavelength``), which is what lets a model generalize across
       fidelity levels and wavelengths.
    """
    eps_r = np.asarray(eps_r, dtype=float)
    source = np.asarray(source)
    scale = np.max(np.abs(source))
    if scale <= 0:
        scale = 1.0
    src = source / scale
    resolution = np.full(eps_r.shape, dl / wavelength)
    return np.stack(
        [eps_r / eps_max, np.real(src), np.imag(src), resolution], axis=0
    ).astype(np.float64)


def field_target(
    ez: np.ndarray, field_scale: float = 1.0, source: np.ndarray | None = None
) -> np.ndarray:
    """Model target: real/imaginary parts of ``Ez`` scaled to the model convention.

    The field is divided by ``field_scale`` (a dataset-wide constant) and, when
    the source is provided, by the source's maximum amplitude.  Together with
    :func:`standardize_input` (which divides the source by the same amplitude)
    this makes the learned map amplitude-invariant, so a trained model can be
    applied to sources of any strength — in particular to adjoint sources —
    by rescaling its output (see :class:`repro.surrogate.neural_solver.NeuralFieldBackend`).
    """
    ez = np.asarray(ez)
    scale = float(field_scale)
    if source is not None:
        amplitude = float(np.max(np.abs(source)))
        if amplitude > 0:
            scale *= amplitude
    return np.stack([ez.real, ez.imag], axis=0).astype(np.float64) / scale
