"""Dataset containers, device-level splits and on-disk storage.

A :class:`PhotonicDataset` is a list of :class:`Sample` records sharing one
grid shape.  Splitting is *hierarchical* in the MAPS-Train sense: all samples
derived from the same design pattern (e.g. different ports, states or fidelity
levels of one structure) stay in the same split, which prevents test-set
leakage through near-identical structures.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.data.labels import RichLabels, field_target, standardize_input
from repro.utils.rng import get_rng


@dataclass
class Sample:
    """One dataset entry: standardized model input, field target and labels."""

    inputs: np.ndarray
    target: np.ndarray
    density: np.ndarray
    device_name: str
    spec_index: int
    wavelength: float
    dl: float
    figure_of_merit: float
    transmission: float
    stage: str
    fidelity: str
    design_id: int
    adjoint_gradient: np.ndarray | None = None
    source: np.ndarray | None = None
    eps_r: np.ndarray | None = None
    #: Per-sample loss weight (1.0 = unweighted).  Active-learning acquisition
    #: stamps its score here (via ``RichLabels.extras["sample_weight"]``) so
    #: informative samples pull harder on the training loss.
    weight: float = 1.0

    @property
    def grid_shape(self) -> tuple[int, int]:
        return self.inputs.shape[-2:]


class PhotonicDataset:
    """An in-memory dataset of photonic simulation samples.

    Parameters
    ----------
    samples:
        The sample list (may be empty and filled incrementally).
    field_scale:
        Global scale applied to the field targets; stored so predictions can be
        mapped back to physical fields.
    metadata:
        Free-form provenance information (device, strategy, fidelity, seed...).
    """

    def __init__(
        self,
        samples: list[Sample] | None = None,
        field_scale: float = 1.0,
        metadata: dict | None = None,
    ):
        self.samples: list[Sample] = list(samples or [])
        self.field_scale = float(field_scale)
        self.metadata: dict = dict(metadata or {})

    # -- container protocol -------------------------------------------------------
    def __len__(self) -> int:
        return len(self.samples)

    def __getitem__(self, index: int) -> Sample:
        return self.samples[index]

    def __iter__(self):
        return iter(self.samples)

    def append(self, sample: Sample) -> None:
        self.samples.append(sample)

    # -- construction from rich labels -----------------------------------------------
    @classmethod
    def from_labels(
        cls,
        labels: list[RichLabels],
        design_ids: list[int],
        field_scale: float | None = None,
        metadata: dict | None = None,
    ) -> "PhotonicDataset":
        """Build a dataset from rich labels, computing the global field scale."""
        if len(labels) != len(design_ids):
            raise ValueError("labels and design_ids must have the same length")
        if field_scale is None:
            if labels:
                field_scale = float(
                    np.median([np.std(np.abs(lab.ez)) for lab in labels]) or 1.0
                )
            else:
                field_scale = 1.0
        dataset = cls(field_scale=field_scale, metadata=metadata)
        for lab, design_id in zip(labels, design_ids):
            dataset.append(
                Sample(
                    inputs=standardize_input(lab.eps_r, lab.source, lab.wavelength, lab.dl),
                    target=field_target(lab.ez, field_scale, source=lab.source),
                    density=lab.density,
                    device_name=lab.device_name,
                    spec_index=lab.spec_index,
                    wavelength=lab.wavelength,
                    dl=lab.dl,
                    figure_of_merit=lab.figure_of_merit,
                    transmission=lab.total_transmission(),
                    stage=lab.stage,
                    fidelity=lab.fidelity,
                    design_id=int(design_id),
                    adjoint_gradient=lab.adjoint_gradient,
                    source=lab.source,
                    eps_r=lab.eps_r,
                    weight=float(lab.extras.get("sample_weight", 1.0)),
                )
            )
        return dataset

    # -- batching ------------------------------------------------------------------------
    def input_array(self) -> np.ndarray:
        """All inputs stacked into ``(N, C, H, W)``."""
        return np.stack([s.inputs for s in self.samples], axis=0)

    def target_array(self) -> np.ndarray:
        """All field targets stacked into ``(N, 2, H, W)``."""
        return np.stack([s.target for s in self.samples], axis=0)

    def transmission_array(self) -> np.ndarray:
        """Scalar transmission labels, ``(N,)``."""
        return np.array([s.transmission for s in self.samples])

    def fom_array(self) -> np.ndarray:
        """Scalar figure-of-merit labels, ``(N,)``."""
        return np.array([s.figure_of_merit for s in self.samples])

    def fidelity_array(self) -> np.ndarray:
        """Per-sample fidelity tags, ``(N,)`` (used by fidelity curricula)."""
        return np.array([s.fidelity for s in self.samples])

    def sample_weight_array(self) -> np.ndarray:
        """Per-sample loss weights, ``(N,)`` (1.0 everywhere when unweighted)."""
        return np.array([s.weight for s in self.samples])

    def design_id_array(self) -> np.ndarray:
        """Per-sample design ids, ``(N,)``."""
        return np.array([s.design_id for s in self.samples], dtype=int)

    def sample_shapes(self) -> list[tuple[int, int]]:
        """Per-sample grid shapes (multi-fidelity datasets may mix sizes)."""
        return [s.grid_shape for s in self.samples]

    def gather(self, indices) -> tuple[np.ndarray, np.ndarray]:
        """``(inputs, targets)`` stacks for an explicit index selection."""
        indices = np.asarray(indices, dtype=int)
        inputs = np.stack([self.samples[i].inputs for i in indices], axis=0)
        targets = np.stack([self.samples[i].target for i in indices], axis=0)
        return inputs, targets

    def batches(self, batch_size: int, shuffle: bool = True, rng=None):
        """Yield ``(inputs, targets, indices)`` mini-batches as NumPy arrays.

        Batches never mix grid shapes: a chunk that would stack samples of
        different fidelity *grids* is split at the shape boundaries (see
        :func:`split_shape_runs`).  Uniform datasets get exactly the chunks a
        plain ``range(0, n, batch_size)`` walk produces.
        """
        if batch_size <= 0:
            raise ValueError(f"batch size must be positive, got {batch_size}")
        order = np.arange(len(self.samples))
        if shuffle:
            get_rng(rng).shuffle(order)
        shapes = self.sample_shapes()
        for start in range(0, len(order), batch_size):
            for chunk in split_shape_runs(order[start : start + batch_size], shapes):
                inputs, targets = self.gather(chunk)
                yield inputs, targets, chunk

    def filter(self, predicate) -> "PhotonicDataset":
        """Dataset with the samples for which ``predicate(sample)`` is True."""
        return PhotonicDataset(
            [s for s in self.samples if predicate(s)],
            field_scale=self.field_scale,
            metadata=dict(self.metadata),
        )

    # -- persistence ---------------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Save to a compressed ``.npz`` file (arrays) plus embedded JSON metadata."""
        path = Path(path)
        arrays: dict[str, np.ndarray] = {}
        scalar_records = []
        for i, sample in enumerate(self.samples):
            arrays[f"inputs_{i}"] = sample.inputs
            arrays[f"target_{i}"] = sample.target
            arrays[f"density_{i}"] = sample.density
            if sample.adjoint_gradient is not None:
                arrays[f"adjgrad_{i}"] = sample.adjoint_gradient
            if sample.source is not None:
                arrays[f"source_{i}"] = sample.source
            if sample.eps_r is not None:
                arrays[f"eps_{i}"] = sample.eps_r
            scalar_records.append(
                {
                    "device_name": sample.device_name,
                    "spec_index": sample.spec_index,
                    "wavelength": sample.wavelength,
                    "dl": sample.dl,
                    "figure_of_merit": sample.figure_of_merit,
                    "transmission": sample.transmission,
                    "stage": sample.stage,
                    "fidelity": sample.fidelity,
                    "design_id": sample.design_id,
                    "weight": sample.weight,
                }
            )
        header = {
            "num_samples": len(self.samples),
            "field_scale": self.field_scale,
            "metadata": self.metadata,
            "records": scalar_records,
        }
        arrays["__header__"] = np.frombuffer(
            json.dumps(header, default=str).encode("utf-8"), dtype=np.uint8
        )
        np.savez_compressed(path, **arrays)

    @classmethod
    def load(cls, path: str | Path) -> "PhotonicDataset":
        """Load a dataset saved by :meth:`save`."""
        path = Path(path)
        with np.load(path, allow_pickle=False) as archive:
            header = json.loads(bytes(archive["__header__"].tobytes()).decode("utf-8"))
            samples = []
            for i, record in enumerate(header["records"]):
                samples.append(
                    Sample(
                        inputs=archive[f"inputs_{i}"],
                        target=archive[f"target_{i}"],
                        density=archive[f"density_{i}"],
                        adjoint_gradient=archive[f"adjgrad_{i}"]
                        if f"adjgrad_{i}" in archive
                        else None,
                        source=archive[f"source_{i}"] if f"source_{i}" in archive else None,
                        eps_r=archive[f"eps_{i}"] if f"eps_{i}" in archive else None,
                        **record,
                    )
                )
        return cls(samples, field_scale=header["field_scale"], metadata=header["metadata"])


def split_shape_runs(chunk: np.ndarray, shapes) -> list[np.ndarray]:
    """Split an index chunk into consecutive runs of equal sample shape.

    ``np.stack`` needs every sample of a batch on the same grid, but a
    multi-fidelity dataset can mix cell sizes.  Splitting at shape boundaries
    (instead of re-ordering) keeps batch composition a pure function of the
    index order, so shuffled iteration stays bit-identical between the
    in-memory and the streaming data paths.  Uniform chunks come back whole.
    """
    if len(chunk) == 0:
        return []
    runs = []
    start = 0
    for stop in range(1, len(chunk) + 1):
        if stop == len(chunk) or shapes[chunk[stop]] != shapes[chunk[start]]:
            runs.append(chunk[start:stop])
            start = stop
    return runs


def _arrays_equal(a: np.ndarray | None, b: np.ndarray | None) -> bool:
    if a is None or b is None:
        return a is None and b is None
    return np.array_equal(a, b)


def datasets_bit_identical(left: PhotonicDataset, right: PhotonicDataset) -> bool:
    """Exact (bitwise) equality of two datasets, field by field.

    This is the contract of sharded generation — the merged dataset must be
    bit-identical regardless of worker count or resume path — so *every*
    sample field is compared exactly: arrays with ``np.array_equal``
    (including the optional gradient/source/eps arrays) and scalars with
    ``==``, never with tolerances.
    """
    if len(left) != len(right) or left.field_scale != right.field_scale:
        return False
    for a, b in zip(left, right):
        if not (
            _arrays_equal(a.inputs, b.inputs)
            and _arrays_equal(a.target, b.target)
            and _arrays_equal(a.density, b.density)
            and _arrays_equal(a.adjoint_gradient, b.adjoint_gradient)
            and _arrays_equal(a.source, b.source)
            and _arrays_equal(a.eps_r, b.eps_r)
            and a.device_name == b.device_name
            and a.spec_index == b.spec_index
            and a.wavelength == b.wavelength
            and a.dl == b.dl
            and a.figure_of_merit == b.figure_of_merit
            and a.transmission == b.transmission
            and a.stage == b.stage
            and a.fidelity == b.fidelity
            and a.design_id == b.design_id
            and a.weight == b.weight
        ):
            return False
    return True


def split_dataset(
    dataset: PhotonicDataset,
    train_fraction: float = 0.7,
    val_fraction: float = 0.0,
    rng=None,
) -> tuple[PhotonicDataset, ...]:
    """Device-level (design-level) split into train / (val) / test.

    All samples sharing a ``design_id`` land in the same split — the
    hierarchical data-loader requirement of MAPS-Train that prevents test-set
    leakage between samples of the same structure.
    """
    if not 0.0 < train_fraction <= 1.0:
        raise ValueError(f"train fraction must be in (0, 1], got {train_fraction}")
    if val_fraction < 0.0 or train_fraction + val_fraction > 1.0:
        raise ValueError("fractions must satisfy train + val <= 1")
    design_ids = sorted({s.design_id for s in dataset})
    order = np.array(design_ids)
    get_rng(rng).shuffle(order)
    n_train = int(round(train_fraction * len(order)))
    n_val = int(round(val_fraction * len(order)))
    train_ids = set(order[:n_train].tolist())
    val_ids = set(order[n_train : n_train + n_val].tolist())

    train = dataset.filter(lambda s: s.design_id in train_ids)
    if val_fraction > 0:
        val = dataset.filter(lambda s: s.design_id in val_ids)
        test = dataset.filter(
            lambda s: s.design_id not in train_ids and s.design_id not in val_ids
        )
        return train, val, test
    test = dataset.filter(lambda s: s.design_id not in train_ids)
    return train, test
