"""MAPS-Data: dataset acquisition for AI-assisted photonic design.

The subpackage provides

* configurable sampling strategies (:mod:`repro.data.sampling`) — random
  patterns, optimization-trajectory sampling and perturbed-trajectory
  sampling,
* rich label extraction (:mod:`repro.data.labels`) — fields, S-parameters,
  fluxes, figures of merit, adjoint gradients and Maxwell residuals for every
  sample,
* multi-fidelity dataset generation (:mod:`repro.data.generator`) — the same
  designs simulated at coarse and fine mesh,
* dataset containers with device-level splits and on-disk storage
  (:mod:`repro.data.dataset`),
* streaming shard loading for training with bounded memory
  (:mod:`repro.data.loader`), and
* distribution analysis utilities used to reproduce Fig. 5
  (:mod:`repro.data.analysis`).
"""

from repro.data.labels import RichLabels, extract_labels, standardize_input
from repro.data.sampling import (
    SamplingStrategy,
    RandomSampling,
    OptTrajSampling,
    PerturbedOptTrajSampling,
    make_sampler,
)
from repro.data.generator import (
    DatasetGenerator,
    GeneratorConfig,
    ShardExecutionError,
    generate_dataset,
)
from repro.data.shards import (
    ShardSpec,
    ShardTask,
    load_shard,
    plan_shards,
    run_shard,
    save_shard,
    shard_fingerprint,
)
from repro.data.dataset import (
    PhotonicDataset,
    Sample,
    datasets_bit_identical,
    split_dataset,
)
from repro.data.loader import ShardDataLoader

__all__ = [
    "RichLabels",
    "extract_labels",
    "standardize_input",
    "SamplingStrategy",
    "RandomSampling",
    "OptTrajSampling",
    "PerturbedOptTrajSampling",
    "make_sampler",
    "DatasetGenerator",
    "GeneratorConfig",
    "generate_dataset",
    "ShardExecutionError",
    "ShardSpec",
    "ShardTask",
    "plan_shards",
    "run_shard",
    "save_shard",
    "load_shard",
    "shard_fingerprint",
    "PhotonicDataset",
    "Sample",
    "datasets_bit_identical",
    "split_dataset",
    "ShardDataLoader",
]
