"""Dataset distribution analysis (reproduces the quantities plotted in Fig. 5).

* :func:`transmission_histogram` — the transmission-ratio histogram comparing
  sampling strategies (Fig. 5a),
* :func:`pattern_embedding` — a 2-D embedding of the design patterns showing
  how each strategy covers the low-/high-performance regions (Fig. 5b; the
  paper uses t-SNE, this reproduction uses a PCA embedding which preserves the
  coarse cluster structure without an extra dependency),
* :func:`distribution_balance` — a scalar summary (entropy of the histogram)
  quantifying how balanced a dataset's FoM distribution is.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import PhotonicDataset


def transmission_histogram(
    dataset: PhotonicDataset,
    bins: int = 10,
    value: str = "figure_of_merit",
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of per-sample transmission ratio (or FoM).

    Returns ``(counts, bin_edges)`` with counts normalized to fractions.
    """
    if value == "figure_of_merit":
        values = dataset.fom_array()
    elif value == "transmission":
        values = dataset.transmission_array()
    else:
        raise ValueError(f"unknown value kind {value!r}")
    values = np.clip(values, 0.0, 1.0)
    counts, edges = np.histogram(values, bins=bins, range=(0.0, 1.0))
    total = counts.sum()
    fractions = counts / total if total else counts.astype(float)
    return fractions, edges


def pattern_embedding(
    datasets: dict[str, PhotonicDataset],
    num_components: int = 2,
) -> dict[str, np.ndarray]:
    """Joint PCA embedding of the design patterns of several datasets.

    All patterns are flattened, centred with the joint mean and projected onto
    the top principal components of the joint collection, so the embeddings of
    different strategies are directly comparable (as in Fig. 5b).
    """
    if not datasets:
        raise ValueError("at least one dataset is required")
    names = list(datasets)
    flattened = []
    boundaries = [0]
    for name in names:
        patterns = np.stack([s.density.ravel() for s in datasets[name]], axis=0)
        flattened.append(patterns)
        boundaries.append(boundaries[-1] + patterns.shape[0])
    joint = np.concatenate(flattened, axis=0)
    mean = joint.mean(axis=0, keepdims=True)
    centred = joint - mean
    # PCA via SVD of the centred data matrix.
    _, _, v_t = np.linalg.svd(centred, full_matrices=False)
    components = v_t[:num_components]
    projected = centred @ components.T
    return {
        name: projected[boundaries[i] : boundaries[i + 1]]
        for i, name in enumerate(names)
    }


def distribution_balance(dataset: PhotonicDataset, bins: int = 10) -> float:
    """Normalized entropy of the FoM histogram (1 = perfectly balanced).

    Random sampling concentrates almost all mass in the lowest bin and scores
    near 0; perturbed trajectory sampling spreads mass across bins and scores
    much higher.
    """
    fractions, _ = transmission_histogram(dataset, bins=bins)
    nonzero = fractions[fractions > 0]
    if nonzero.size == 0:
        return 0.0
    entropy = -np.sum(nonzero * np.log(nonzero))
    return float(entropy / np.log(bins))


def fom_coverage(dataset: PhotonicDataset, threshold: float = 0.5) -> float:
    """Fraction of samples whose figure of merit exceeds ``threshold``."""
    foms = dataset.fom_array()
    if foms.size == 0:
        return 0.0
    return float(np.mean(foms >= threshold))
