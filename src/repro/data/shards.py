"""Deterministic sharding of dataset-generation runs.

A generation run (a :class:`~repro.data.generator.GeneratorConfig` plus the
designs it sampled) is split into *shards*: one fidelity level crossed with a
contiguous block of designs.  Three invariants make sharding safe to
parallelize and to resume:

* **Stable identity** — a design keeps its global ``design_id`` no matter
  which shard it lands in, and the shard layout is a pure function of the
  config (never of the worker count), so re-running with a different
  ``workers=`` produces byte-identical labels.
* **Per-shard RNG streams** — every shard carries its own seed spawned from
  ``config.seed`` via :class:`numpy.random.SeedSequence`, so any worker-side
  stochastic component draws from an independent stream instead of a shared
  cursor whose position depends on execution order.
* **Resumable artifacts** — a shard can be persisted as a self-describing
  ``.npz`` keyed by a content fingerprint (config, fidelity, engine, design
  densities); a rerun loads finished shards and only computes the missing
  ones.

Workers are plain processes: :func:`run_shard` is the picklable entry point
mapped over :class:`ShardTask` lists by :func:`repro.utils.parallel.run_tasks`.
Each worker rebuilds its device, pre-warms the permittivity-independent
operator cache (:func:`repro.fdfd.engine.warmup_operators`) and labels its
designs through the batched engine path.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.constants import wavelength_to_omega
from repro.data.labels import RichLabels, extract_labels_batch
from repro.devices.factory import make_device
from repro.fdfd.engine import SolverEngine, split_engine_name, warmup_operators
from repro.utils import faults
from repro.utils.numerics import resample_bilinear

logger = logging.getLogger(__name__)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (generator imports us)
    from repro.data.generator import GeneratorConfig

__all__ = [
    "SHARD_FORMAT_VERSION",
    "ShardSpec",
    "ShardTask",
    "discard_stale_partials",
    "engine_for_fidelity",
    "plan_shards",
    "quarantine_artifact",
    "shard_fingerprint",
    "shard_filename",
    "run_shard",
    "save_shard",
    "load_shard",
    "try_load_shard",
]

# Version 2: labels carry ``extras["sample_weight"]`` (per-design acquisition
# weights) and the shard fingerprint covers the weight vector.  Version-1
# artifacts fail the version check: the generator regenerates them under new
# fingerprint file names, and ``ShardDataLoader`` skips the stale files left
# behind (it never deletes files it does not own).
SHARD_FORMAT_VERSION = 2


# --------------------------------------------------------------------------- #
# engine selection
# --------------------------------------------------------------------------- #
def engine_for_fidelity(
    engine: SolverEngine | str | dict | None, fidelity: str
) -> SolverEngine | str | None:
    """Resolve a generator engine setting for one fidelity level.

    ``engine`` may be a single engine (instance or registry name) applied to
    every fidelity, or a mapping ``{fidelity: engine}`` with an optional
    ``"*"`` default entry.
    """
    if engine is None or isinstance(engine, (str, SolverEngine)):
        return engine
    if isinstance(engine, dict):
        return engine.get(fidelity, engine.get("*"))
    raise TypeError(
        "engine must be a SolverEngine, a registry name, a {fidelity: engine} "
        f"mapping or None; got {type(engine)!r}"
    )


def engine_tag(engine: SolverEngine | str | None) -> str:
    """Stable string naming an engine selection (used in fingerprints/metadata).

    Names are normalized the way the engine registry normalizes them, so
    equivalent spellings ("Direct", "direct ") fingerprint — and resume —
    identically.  A ``":<spec>"`` suffix (e.g. the checkpoint path of
    ``"neural:model.npz"``) keeps its case: it usually names a file.
    """
    if engine is None:
        return "direct"
    if isinstance(engine, str):
        base, spec = split_engine_name(engine)
        return base if spec is None else f"{base}:{spec}"
    return getattr(engine, "name", type(engine).__name__)


# --------------------------------------------------------------------------- #
# shard planning
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ShardSpec:
    """One shard of a generation run: a fidelity level x a block of designs."""

    index: int
    fidelity: str
    fidelity_index: int
    design_ids: tuple[int, ...]
    rng_seed: int


@dataclass
class ShardTask:
    """Everything a worker process needs to execute one shard."""

    spec: ShardSpec
    config: "GeneratorConfig"
    densities: list[np.ndarray]
    stages: list[str]
    reference_shape: tuple[int, int]
    fingerprint: str
    shard_path: str | None = None
    #: Per-design loss weights (acquisition scores) stamped into every label's
    #: ``extras["sample_weight"]``.  None means uniform (1.0).
    weights: list[float] | None = None
    #: Return labels in memory even when an artifact is written.  Set for
    #: in-process execution, where labels travelling "via the file" would be
    #: a pointless compress/decompress of every field array.
    return_labels: bool = False

    def rng(self) -> np.random.Generator:
        """This shard's independent random stream (for stochastic workers)."""
        return np.random.default_rng(self.spec.rng_seed)


def plan_shards(config: "GeneratorConfig", num_designs: int | None = None) -> list[ShardSpec]:
    """Deterministic shard layout for a config: fidelity-major, stable ids.

    The layout depends only on the config (fidelities, design count, shard
    size) — not on worker count — so labels, artifacts and merge order are
    reproducible across machines and parallelism levels.  Global design ids
    start at ``config.design_id_offset`` (default 0), which is how appending
    runs keep ids unique within a growing shard directory.
    """
    if num_designs is None:
        num_designs = config.num_designs
    if num_designs <= 0:
        raise ValueError(f"num_designs must be positive, got {num_designs}")
    shard_size = int(getattr(config, "shard_size", 0) or 0)
    if shard_size <= 0:
        shard_size = num_designs
    offset = int(getattr(config, "design_id_offset", 0) or 0)
    blocks = [
        tuple(range(offset + start, offset + min(start + shard_size, num_designs)))
        for start in range(0, num_designs, shard_size)
    ]
    total = len(config.fidelities) * len(blocks)
    children = np.random.SeedSequence(int(config.seed)).spawn(total)
    specs: list[ShardSpec] = []
    for fidelity_index, fidelity in enumerate(config.fidelities):
        for block in blocks:
            index = len(specs)
            specs.append(
                ShardSpec(
                    index=index,
                    fidelity=fidelity,
                    fidelity_index=fidelity_index,
                    design_ids=block,
                    rng_seed=int(children[index].generate_state(1)[0]),
                )
            )
    return specs


def shard_fingerprint(
    config: "GeneratorConfig",
    spec: ShardSpec,
    densities: list[np.ndarray],
    stages: list[str],
    weights: list[float] | None = None,
) -> str:
    """Content fingerprint of a shard: config identity + design content.

    Hashing the actual design densities (not just the sampling seed) keeps
    resume artifacts valid for externally supplied designs and stale-proof
    when the sampling strategy changes.  Per-design loss ``weights`` are part
    of the identity too — they change what training sees, so a re-weighted
    rerun must not resume from differently weighted artifacts.
    """
    payload = {
        "version": SHARD_FORMAT_VERSION,
        "device_name": config.device_name,
        "device_kwargs": config.device_kwargs or {},
        "with_gradient": bool(config.with_gradient),
        "engine": engine_tag(engine_for_fidelity(config.engine, spec.fidelity)),
        "fidelity": spec.fidelity,
        "design_ids": list(spec.design_ids),
        "stages": list(stages),
        "weights": [float(w) for w in weights]
        if weights is not None
        else [1.0] * len(densities),
    }
    wavelengths = getattr(config, "wavelengths", None)
    if wavelengths is not None:
        # Only stamped when broadband mode is on, so every pre-existing
        # single-wavelength artifact keeps its fingerprint (and resumability).
        payload["wavelengths"] = [float(w) for w in wavelengths]
    chi3 = getattr(config, "chi3", None)
    if chi3 is not None:
        # Same conditional-stamping contract as wavelengths: nonlinear runs
        # carry their chi3/intensity axis, linear artifacts stay bit-identical.
        payload["chi3"] = float(chi3)
        intensities = getattr(config, "intensities", None)
        if intensities is not None:
            payload["intensities"] = [float(s) for s in intensities]
    digest = hashlib.sha1(json.dumps(payload, sort_keys=True, default=str).encode())
    for density in densities:
        density = np.ascontiguousarray(np.asarray(density, dtype=float))
        digest.update(str(density.shape).encode())
        digest.update(density.tobytes())
    return digest.hexdigest()


def shard_filename(fingerprint: str) -> str:
    """Artifact file name for a shard fingerprint."""
    return f"shard_{fingerprint[:20]}.npz"


# --------------------------------------------------------------------------- #
# worker entry point
# --------------------------------------------------------------------------- #
def attach_factorization_store(directory: str) -> None:
    """Attach a cross-process factorization store to this process's cache.

    ``run_tasks`` initializer for generation worker pools
    (``GeneratorConfig(factorization_store=...)``): every worker's default
    :class:`~repro.fdfd.engine.FactorizationCache` then falls through to the
    shared store, so the pool factorizes each distinct operator once *total*
    (first worker publishes, the rest memory-map) instead of once per worker —
    and a later run over the same devices starts warm.  Must stay importable
    at module top level so process pools can pickle it.
    """
    from repro.fdfd.engine import default_factorization_cache
    from repro.service.cache_store import FileFactorizationStore

    default_factorization_cache.attach_store(FileFactorizationStore(directory))


def configure_worker(backend: str | None, store_directory: str | None) -> None:
    """Process-wide worker setup: array backend, then shared store.

    ``run_tasks`` initializer for generation worker pools when either knob
    is set (``GeneratorConfig(backend=..., factorization_store=...)``).
    Backend selection must happen in the worker itself — a process default
    set in the parent does not survive the pool's spawn/fork boundary.  Must
    stay importable at module top level so process pools can pickle it.
    """
    if backend:
        from repro.utils.backend import set_default_backend

        set_default_backend(backend)
    if store_directory:
        attach_factorization_store(store_directory)


def run_shard(task: ShardTask):
    """Execute one shard: simulate and label its designs at its fidelity.

    Returns the artifact path (when ``task.shard_path`` is set and
    ``task.return_labels`` is not — the labels then travel via the file
    instead of the result pickle) or the in-memory ``(labels, design_ids)``
    pair.  Must stay importable at module top level so process pools can
    pickle it.
    """
    config = task.config
    spec = task.spec
    device = make_device(
        config.device_name, fidelity=spec.fidelity, **(config.device_kwargs or {})
    )
    wavelengths = getattr(config, "wavelengths", None)
    # Broadband shards touch the operators at the extraction wavelengths
    # (residual labels), not at the specs' own.
    warm = list(wavelengths) if wavelengths else [s.wavelength for s in device.specs]
    warmup_operators(device.grid, [wavelength_to_omega(w) for w in warm])
    engine = engine_for_fidelity(config.engine, spec.fidelity)
    chi3 = getattr(config, "chi3", None)
    nonlinearity = None
    if chi3 is not None:
        from repro.fdfd.nonlinear import KerrNonlinearity

        nonlinearity = KerrNonlinearity(chi3=float(chi3))
    intensities = getattr(config, "intensities", None)

    labels: list[RichLabels] = []
    design_ids: list[int] = []
    weights = task.weights if task.weights is not None else [1.0] * len(task.densities)
    for design_id, density, stage, weight in zip(
        spec.design_ids, task.densities, task.stages, weights
    ):
        if device.design_shape != tuple(task.reference_shape):
            density = np.clip(
                resample_bilinear(density, device.design_shape), 0.0, 1.0
            )
        design_labels = extract_labels_batch(
            device,
            density,
            with_gradient=config.with_gradient,
            fidelity=spec.fidelity,
            stage=stage,
            engine=engine,
            wavelengths=wavelengths,
            nonlinearity=nonlinearity,
            intensities=intensities,
        )
        for label in design_labels:
            # The acquisition weight rides in the label extras, which shard
            # artifacts round-trip exactly — that is the metadata channel the
            # loader and trainer read it back from.
            label.extras["sample_weight"] = float(weight)
        labels.extend(design_labels)
        design_ids.extend([design_id] * len(design_labels))

    if task.shard_path is not None:
        save_shard(task.shard_path, labels, design_ids, fingerprint=task.fingerprint)
        faults.on_shard_saved(spec.index, task.shard_path)
        if not task.return_labels:
            return task.shard_path
    return labels, design_ids


# --------------------------------------------------------------------------- #
# shard artifacts
# --------------------------------------------------------------------------- #
def save_shard(
    path: str | Path,
    labels: list[RichLabels],
    design_ids: list[int],
    fingerprint: str = "",
) -> Path:
    """Atomically write one shard's rich labels to a self-describing ``.npz``.

    Arrays are stored losslessly; scalars ride in an embedded JSON header
    (JSON round-trips Python floats exactly), so a loaded shard is
    bit-identical to the in-memory labels.
    """
    path = Path(path)
    arrays: dict[str, np.ndarray] = {}
    records = []
    for i, lab in enumerate(labels):
        arrays[f"density_{i}"] = lab.density
        arrays[f"eps_{i}"] = lab.eps_r
        arrays[f"source_{i}"] = lab.source
        arrays[f"ez_{i}"] = lab.ez
        arrays[f"hx_{i}"] = lab.hx
        arrays[f"hy_{i}"] = lab.hy
        if lab.adjoint_gradient is not None:
            arrays[f"adjgrad_{i}"] = lab.adjoint_gradient
        records.append(
            {
                "design_id": int(design_ids[i]),
                "device_name": lab.device_name,
                "spec_index": lab.spec_index,
                "wavelength": lab.wavelength,
                "dl": lab.dl,
                "transmissions": dict(lab.transmissions),
                "s_params": {k: [v.real, v.imag] for k, v in lab.s_params.items()},
                "objective_value": lab.objective_value,
                "figure_of_merit": lab.figure_of_merit,
                "radiation": lab.radiation,
                "maxwell_residual": lab.maxwell_residual,
                "fidelity": lab.fidelity,
                "stage": lab.stage,
                "extras": dict(lab.extras),
            }
        )
    header = {
        "version": SHARD_FORMAT_VERSION,
        "fingerprint": fingerprint,
        "num_labels": len(labels),
        "records": records,
    }
    arrays["__header__"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    # The temp name is dot-prefixed so a crash mid-write can never leave a
    # file matching the ``shard_*.npz`` glob the loader and resume scan — a
    # half-written partial must be invisible, not merely unlikely to load.
    # (It keeps the ``.npz`` suffix because ``savez`` appends one otherwise.)
    tmp = path.with_name(f".{path.stem}.tmp-{os.getpid()}.npz")
    np.savez_compressed(tmp, **arrays)
    os.replace(tmp, path)
    return path


def load_shard(
    path: str | Path, expected_fingerprint: str | None = None
) -> tuple[list[RichLabels], list[int]]:
    """Load a shard artifact written by :func:`save_shard`.

    Raises ``ValueError`` when the artifact's fingerprint does not match
    ``expected_fingerprint`` (stale artifact from a different config/designs).
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        header = json.loads(bytes(archive["__header__"].tobytes()).decode("utf-8"))
        if header.get("version") != SHARD_FORMAT_VERSION:
            raise ValueError(
                f"shard {path} has format version {header.get('version')!r}; "
                f"expected {SHARD_FORMAT_VERSION}"
            )
        if expected_fingerprint is not None and header.get("fingerprint") != expected_fingerprint:
            raise ValueError(f"shard {path} does not match the requested configuration")
        labels: list[RichLabels] = []
        design_ids: list[int] = []
        for i, record in enumerate(header["records"]):
            labels.append(
                RichLabels(
                    device_name=record["device_name"],
                    spec_index=int(record["spec_index"]),
                    wavelength=record["wavelength"],
                    dl=record["dl"],
                    density=archive[f"density_{i}"],
                    eps_r=archive[f"eps_{i}"],
                    source=archive[f"source_{i}"],
                    ez=archive[f"ez_{i}"],
                    hx=archive[f"hx_{i}"],
                    hy=archive[f"hy_{i}"],
                    transmissions=dict(record["transmissions"]),
                    s_params={
                        k: complex(re, im) for k, (re, im) in record["s_params"].items()
                    },
                    objective_value=record["objective_value"],
                    figure_of_merit=record["figure_of_merit"],
                    radiation=record["radiation"],
                    adjoint_gradient=archive[f"adjgrad_{i}"]
                    if f"adjgrad_{i}" in archive
                    else None,
                    maxwell_residual=record["maxwell_residual"],
                    fidelity=record["fidelity"],
                    stage=record["stage"],
                    extras=dict(record["extras"]),
                )
            )
            design_ids.append(int(record["design_id"]))
    return labels, design_ids


def try_load_shard(
    path: str | Path, expected_fingerprint: str | None = None
) -> tuple[list[RichLabels], list[int]] | None:
    """Load a shard artifact, or None if missing, corrupt or mismatched."""
    path = Path(path)
    if not path.is_file():
        return None
    try:
        return load_shard(path, expected_fingerprint)
    except (
        ValueError,
        KeyError,
        OSError,
        EOFError,
        zipfile.BadZipFile,  # truncated archive that kept the zip magic
        json.JSONDecodeError,
    ):
        return None


def quarantine_artifact(path: str | Path) -> Path | None:
    """Move a corrupt shard artifact out of the way (``<name>.bad``).

    A quarantined file no longer matches the ``shard_*.npz`` glob, so it can
    never poison ``resume=True`` or a :class:`ShardDataLoader` scan again —
    the shard is simply recomputed under its original name.  Returns the
    quarantine path, or None when there was nothing to move (already gone,
    e.g. a concurrent run got there first).
    """
    path = Path(path)
    target = path.with_name(path.name + ".bad")
    suffix = 0
    while target.exists():
        suffix += 1
        target = path.with_name(f"{path.name}.bad{suffix}")
    try:
        path.rename(target)
    except FileNotFoundError:
        return None
    except OSError:
        logger.warning("could not quarantine corrupt shard artifact %s", path)
        return None
    logger.warning("quarantined corrupt shard artifact %s -> %s", path.name, target.name)
    return target


def discard_stale_partials(path: str | Path) -> int:
    """Delete leftover temp files from crashed writers of this artifact.

    Matches both the current dot-prefixed temp naming and the legacy
    unprefixed one (which *did* match the loader glob — removing those is
    what makes old crashed runs safe to resume).  Returns how many files
    were removed.
    """
    path = Path(path)
    removed = 0
    for pattern in (f".{path.stem}.tmp-*.npz", f"{path.stem}.tmp-*.npz"):
        for stale in path.parent.glob(pattern):
            try:
                stale.unlink()
                removed += 1
            except OSError:  # pragma: no cover - racing cleanup
                pass
    return removed
