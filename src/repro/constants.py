"""Physical constants and default material parameters used across the package.

All quantities are in SI units unless stated otherwise.  Lengths used by the
device builders are expressed in micrometres for convenience and converted to
metres at the simulation boundary.
"""

import math

# --- fundamental constants -------------------------------------------------
C_0 = 299792458.0
"""Speed of light in vacuum [m/s]."""

MU_0 = 4.0e-7 * math.pi
"""Vacuum permeability [H/m]."""

EPSILON_0 = 1.0 / (MU_0 * C_0**2)
"""Vacuum permittivity [F/m]."""

ETA_0 = math.sqrt(MU_0 / EPSILON_0)
"""Impedance of free space [Ohm]."""

MICROMETRE = 1.0e-6
"""One micrometre in metres."""

NANOMETRE = 1.0e-9
"""One nanometre in metres."""

# --- default materials (silicon photonics at 1550 nm) -----------------------
N_SI = 3.48
"""Refractive index of silicon around 1550 nm."""

N_SIO2 = 1.44
"""Refractive index of silica cladding around 1550 nm."""

N_AIR = 1.0
"""Refractive index of air."""

EPS_SI = N_SI**2
"""Relative permittivity of silicon."""

EPS_SIO2 = N_SIO2**2
"""Relative permittivity of silica."""

EPS_AIR = 1.0
"""Relative permittivity of air."""

DEFAULT_WAVELENGTH = 1.55
"""Default operating wavelength in micrometres (C-band)."""

# Thermo-optic coefficient of silicon [1/K]; used by the thermo-optic switch
# device and the temperature-drift variation model.
DN_DT_SI = 1.8e-4

# Wavelengths used by the wavelength-division-multiplexer device (micrometres).
WDM_WAVELENGTHS = (1.53, 1.57)


def wavelength_to_omega(wavelength_um: float) -> float:
    """Convert a free-space wavelength in micrometres to angular frequency.

    Parameters
    ----------
    wavelength_um:
        Free-space wavelength in micrometres.

    Returns
    -------
    float
        Angular frequency ``omega = 2*pi*c0/lambda`` in rad/s.
    """
    if wavelength_um <= 0:
        raise ValueError(f"wavelength must be positive, got {wavelength_um}")
    return 2.0 * math.pi * C_0 / (wavelength_um * MICROMETRE)


def omega_to_wavelength(omega: float) -> float:
    """Convert an angular frequency in rad/s back to wavelength in micrometres."""
    if omega <= 0:
        raise ValueError(f"omega must be positive, got {omega}")
    return 2.0 * math.pi * C_0 / omega / MICROMETRE
