"""Built-in initial designs for inverse design.

The optimization landscape is non-convex and sensitive to initialization; the
toolkit ships the three initializations used throughout the paper's case
studies (uniform gray, random, and a transmission-encouraging "connect the
ports" heuristic) and accepts arbitrary user-provided patterns.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import get_rng


def _port_entry_point(device, port) -> tuple[float, float]:
    """Entry point of a port into the design region, in design-cell coordinates."""
    grid = device.grid
    sx, sy = device.geometry.design_slice
    h, w = device.design_shape
    if port.normal_axis == "x":
        row = 0.0 if port.position < grid.size_x / 2 else float(h - 1)
        col = port.center / grid.dl - sy.start
        col = float(np.clip(col, 0, w - 1))
        return row, col
    col = 0.0 if port.position < grid.size_y / 2 else float(w - 1)
    row = port.center / grid.dl - sx.start
    row = float(np.clip(row, 0, h - 1))
    return row, col


def _draw_line(density: np.ndarray, start: tuple[float, float], stop: tuple[float, float], half_width: float) -> None:
    """Rasterize a thick straight line into ``density`` in place."""
    h, w = density.shape
    steps = int(4 * max(h, w))
    rows = np.linspace(start[0], stop[0], steps)
    cols = np.linspace(start[1], stop[1], steps)
    yy, xx = np.meshgrid(np.arange(h), np.arange(w), indexing="ij")
    for r, c in zip(rows, cols):
        mask = (yy - r) ** 2 + (xx - c) ** 2 <= half_width**2
        density[mask] = 1.0


def initial_density(device, kind: str = "uniform", rng=None, value: float = 0.5) -> np.ndarray:
    """Build an initial design density for a device.

    Parameters
    ----------
    device:
        A :class:`repro.devices.base.Device`.
    kind:
        ``"uniform"`` — constant gray level ``value``;
        ``"random"`` — i.i.d. uniform densities;
        ``"waveguide"`` — gray background with high-density straight connections
        between the source port and every positively-weighted output port of
        each spec (the "encourage light transmission" heuristic of the paper).
    rng:
        Seed or generator for the random initialization.
    value:
        Gray level of the uniform background.
    """
    shape = device.design_shape
    if kind == "uniform":
        return np.full(shape, float(value))
    if kind == "random":
        return get_rng(rng).uniform(0.0, 1.0, size=shape)
    if kind == "waveguide":
        density = np.full(shape, float(value) * 0.6)
        half_width = max(1.0, 0.48 / device.dl / 2.0)
        for spec in device.specs:
            src_port = next(p for p in device.geometry.ports if p.name == spec.source_port)
            src_point = _port_entry_point(device, src_port)
            for port_name, weight in spec.port_weights.items():
                if weight <= 0:
                    continue
                out_port = next(p for p in device.geometry.ports if p.name == port_name)
                out_point = _port_entry_point(device, out_port)
                _draw_line(density, src_point, out_point, half_width)
        return np.clip(density, 0.0, 1.0)
    raise ValueError(f"unknown initialization kind {kind!r}")
