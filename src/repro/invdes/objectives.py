"""Optimization objectives with analytic adjoint sources.

Every objective computes, from a forward :class:`SimulationResult`, a real
figure-of-merit contribution and its derivative with respect to the complex
field ``Ez`` (the adjoint source).  The derivative convention is
``dF = 2 Re( sum_i (dF/dEz_i) dEz_i )``, which is what the adjoint solver in
:mod:`repro.fdfd.solver` expects.
"""

from __future__ import annotations

import numpy as np

from repro.fdfd.monitors import (
    Port,
    mode_overlap,
    port_h_indices,
    poynting_flux_through_port,
)
from repro.fdfd.simulation import Simulation, SimulationResult


class Objective:
    """Base class: a differentiable functional of the forward field."""

    def value_and_adjoint_source(
        self, sim: Simulation, result: SimulationResult
    ) -> tuple[float, np.ndarray]:
        """Return the objective value and ``dF/dEz`` on the full grid."""
        raise NotImplementedError


class ModeTransmissionObjective(Objective):
    """Power transmission into one guided mode of a port.

    ``T = |c|^2 / |c_norm|^2`` where ``c`` is the modal overlap at the port
    and ``c_norm`` the overlap measured in the source normalization run.  The
    adjoint source is ``dT/dEz_i = (conj(c) / |c_norm|^2) * phi_i * dl`` on the
    port line.
    """

    def __init__(self, port_name: str, mode_index: int = 0, weight: float = 1.0):
        self.port_name = port_name
        self.mode_index = mode_index
        self.weight = float(weight)

    def value_and_adjoint_source(
        self, sim: Simulation, result: SimulationResult
    ) -> tuple[float, np.ndarray]:
        port: Port = sim.ports[self.port_name]
        modes = port.solve_modes(
            sim.eps_r, sim.grid, sim.omega, num_modes=self.mode_index + 1
        )
        adjoint = np.zeros(sim.grid.shape, dtype=complex)
        if len(modes) <= self.mode_index:
            # The port does not guide the requested mode: zero transmission and
            # no adjoint drive from this term.
            return 0.0, adjoint
        mode = modes[self.mode_index]
        overlap = mode_overlap(result.ez, port, mode, sim.grid)
        norm = abs(result.input_overlap) ** 2
        if norm <= 0:
            return 0.0, adjoint
        value = float(abs(overlap) ** 2 / norm)
        line = (np.conj(overlap) / norm) * mode.profile * mode.dl
        adjoint[port.indices(sim.grid)] = line
        return self.weight * value, self.weight * adjoint


class FluxTransmissionObjective(Objective):
    """Power transmission measured as Poynting flux through a port.

    ``T = P_port / P_in`` with ``P_port = -0.5 d Re(sum Ez conj(A Hy))``
    (x-normal ports) or ``+0.5 d Re(sum Ez conj(A Hx))`` (y-normal ports),
    where ``A`` averages the two Yee-staggered H rows straddling the port onto
    the Ez line (see :func:`repro.fdfd.monitors.port_h_indices`).  Because the
    magnetic field is a linear operator applied to ``Ez``, the derivative is::

        dT/dEz = -(0.25 d / P_in) (S^T conj(A M Ez) + M^T A^T S^T conj(S Ez))

    where ``S`` selects the port line and ``M`` is the corresponding discrete
    curl row block; the adjoint averaging ``A^T`` deposits half the line
    selector on each of the two straddling H rows.
    """

    def __init__(self, port_name: str, weight: float = 1.0):
        self.port_name = port_name
        self.weight = float(weight)

    def value_and_adjoint_source(
        self, sim: Simulation, result: SimulationResult
    ) -> tuple[float, np.ndarray]:
        port: Port = sim.ports[self.port_name]
        grid = sim.grid
        flux = poynting_flux_through_port(result.ez, result.hx, result.hy, port, grid)
        p_in = result.input_flux
        if p_in <= 0:
            return 0.0, np.zeros(grid.shape, dtype=complex)
        value = float(flux / p_in)

        # Build dF/dEz analytically.
        solver = sim.solver
        omega = sim.omega
        from repro.constants import MU_0

        index, index_up = port_h_indices(port, grid)
        line_mask = np.zeros(grid.shape, dtype=bool)
        line_mask[index] = True
        flat_index = np.flatnonzero(line_mask.ravel())
        line_mask[...] = False
        line_mask[index_up] = True
        flat_up = np.flatnonzero(line_mask.ravel())

        ez_flat = result.ez.ravel()
        if port.normal_axis == "x":
            curl_rows = solver._derivs["Dxb"]
            h_factor = 1.0 / (1j * omega * MU_0)
            sign = -1.0
        else:
            curl_rows = solver._derivs["Dyb"]
            h_factor = -1.0 / (1j * omega * MU_0)
            sign = +1.0

        h_flat = h_factor * (curl_rows @ ez_flat)
        h_bar = 0.5 * (h_flat[flat_index] + h_flat[flat_up])
        scale = sign * port.direction * 0.25 * grid.dl_m / p_in
        grad = np.zeros(grid.n_points, dtype=complex)
        # Term 1: d/dEz of Ez * conj(A H) at the port line.
        grad[flat_index] += scale * np.conj(h_bar)
        # Term 2: through H = h_factor * (curl_rows @ Ez) in the conj(Ez) * A H
        # product; A^T spreads half the line selector onto each straddling row
        # (np.add.at so a clipped edge port, flat_up == flat_index, still sums).
        selector = np.zeros(grid.n_points, dtype=complex)
        line_weight = 0.5 * scale * np.conj(ez_flat[flat_index])
        np.add.at(selector, flat_index, line_weight)
        np.add.at(selector, flat_up, line_weight)
        grad += h_factor * (curl_rows.T @ selector)
        return self.weight * value, self.weight * grad.reshape(grid.shape)


class CompositeObjective(Objective):
    """Weighted sum of objectives (the weights live inside the terms)."""

    def __init__(self, terms: list[Objective]):
        if not terms:
            raise ValueError("composite objective needs at least one term")
        self.terms = list(terms)

    def value_and_adjoint_source(
        self, sim: Simulation, result: SimulationResult
    ) -> tuple[float, np.ndarray]:
        total = 0.0
        adjoint = np.zeros(sim.grid.shape, dtype=complex)
        for term in self.terms:
            value, source = term.value_and_adjoint_source(sim, result)
            total += value
            adjoint += source
        return total, adjoint


def objective_for_spec(spec, kind: str = "mode") -> CompositeObjective:
    """Build the default objective for a :class:`repro.devices.base.TargetSpec`.

    Each monitored port contributes a transmission term weighted by the spec's
    port weight (positive for wanted ports, negative for crosstalk ports).
    """
    terms: list[Objective] = []
    for port_name, weight in spec.port_weights.items():
        if kind == "mode":
            # Output ports are measured in their fundamental mode.
            terms.append(ModeTransmissionObjective(port_name, 0, weight))
        elif kind == "flux":
            terms.append(FluxTransmissionObjective(port_name, weight))
        else:
            raise ValueError(f"unknown objective kind {kind!r}")
    return CompositeObjective(terms)
