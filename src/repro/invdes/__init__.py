"""MAPS-InvDes: adjoint-method photonic inverse design.

The toolkit abstracts the physics while exposing the optimization steps.  All
field computation is delegated to a :class:`~repro.invdes.adjoint.FieldBackend`
sitting on the solver-engine layer of :mod:`repro.fdfd.engine`: the default
:class:`~repro.invdes.adjoint.NumericalFieldBackend` accepts any engine
(exact direct, iterative low-fidelity, or the ``"neural"`` surrogate tier), so
switching the fidelity of an entire optimization is one constructor argument.
Forward and adjoint solves of a design are batched against a single shared
factorization — the adjoint method costs one back-substitution, not a second
factorization.

* :mod:`repro.invdes.objectives` — composable figure-of-merit terms with
  analytic adjoint sources,
* :mod:`repro.invdes.adjoint` — per-excitation adjoint gradients;
  :func:`~repro.invdes.adjoint.evaluate_specs` batches every excitation of a
  device into grouped factorize-once/solve-many calls,
* :mod:`repro.invdes.problem` — :class:`InverseDesignProblem`, chaining the
  design parametrization, differentiable transforms, fabrication models and
  the simulator into a single ``value_and_grad``,
* :mod:`repro.invdes.optimizer` — :class:`AdjointOptimizer`, an Adam-based
  ascent loop with binarization scheduling and full trajectory recording,
* :mod:`repro.invdes.initialization` — built-in and custom initial designs,
* :mod:`repro.invdes.variation` — variation-aware (robust) optimization over
  fabrication and operating corners.
"""

from repro.invdes.objectives import (
    ModeTransmissionObjective,
    FluxTransmissionObjective,
    CompositeObjective,
)
from repro.invdes.adjoint import (
    FieldBackend,
    NumericalFieldBackend,
    SpecEvaluation,
    evaluate_spec,
    evaluate_specs,
)
from repro.invdes.problem import InverseDesignProblem
from repro.invdes.optimizer import AdjointOptimizer, OptimizationTrajectory
from repro.invdes.initialization import initial_density
from repro.invdes.variation import RobustInverseDesignProblem

__all__ = [
    "ModeTransmissionObjective",
    "FluxTransmissionObjective",
    "CompositeObjective",
    "FieldBackend",
    "NumericalFieldBackend",
    "SpecEvaluation",
    "evaluate_spec",
    "evaluate_specs",
    "InverseDesignProblem",
    "AdjointOptimizer",
    "OptimizationTrajectory",
    "initial_density",
    "RobustInverseDesignProblem",
]
