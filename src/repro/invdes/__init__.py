"""MAPS-InvDes: adjoint-method photonic inverse design.

The toolkit abstracts the physics (FDFD solves, adjoint sources, permittivity
gradients) while exposing the optimization steps:

* :mod:`repro.invdes.objectives` — composable figure-of-merit terms with
  analytic adjoint sources,
* :mod:`repro.invdes.adjoint` — per-excitation adjoint gradients,
* :mod:`repro.invdes.problem` — :class:`InverseDesignProblem`, chaining the
  design parametrization, differentiable transforms, fabrication models and
  the simulator into a single ``value_and_grad``,
* :mod:`repro.invdes.optimizer` — :class:`AdjointOptimizer`, an Adam-based
  ascent loop with binarization scheduling and full trajectory recording,
* :mod:`repro.invdes.initialization` — built-in and custom initial designs,
* :mod:`repro.invdes.variation` — variation-aware (robust) optimization over
  fabrication and operating corners.
"""

from repro.invdes.objectives import (
    ModeTransmissionObjective,
    FluxTransmissionObjective,
    CompositeObjective,
)
from repro.invdes.adjoint import NumericalFieldBackend, SpecEvaluation, evaluate_spec
from repro.invdes.problem import InverseDesignProblem
from repro.invdes.optimizer import AdjointOptimizer, OptimizationTrajectory
from repro.invdes.initialization import initial_density
from repro.invdes.variation import RobustInverseDesignProblem

__all__ = [
    "ModeTransmissionObjective",
    "FluxTransmissionObjective",
    "CompositeObjective",
    "NumericalFieldBackend",
    "SpecEvaluation",
    "evaluate_spec",
    "InverseDesignProblem",
    "AdjointOptimizer",
    "OptimizationTrajectory",
    "initial_density",
    "RobustInverseDesignProblem",
]
