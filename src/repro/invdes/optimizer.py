"""Adam-based adjoint optimization loop with trajectory recording.

The optimizer maximizes the problem's figure of merit.  It supports the
binarization (beta) schedule of fabrication-aware topology optimization and
records the full optimization trajectory — the densities and figures of merit
visited along the way — which is exactly what the optimization-trajectory
sampling strategies of MAPS-Data consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.invdes.problem import InverseDesignProblem, ProblemEvaluation


@dataclass
class TrajectoryPoint:
    """State of the optimization at one iteration."""

    iteration: int
    fom: float
    density: np.ndarray
    theta: np.ndarray
    transmissions: dict[str, float] = field(default_factory=dict)


@dataclass
class OptimizationTrajectory:
    """The recorded optimization run."""

    points: list[TrajectoryPoint] = field(default_factory=list)

    def append(self, point: TrajectoryPoint) -> None:
        self.points.append(point)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def __getitem__(self, index: int) -> TrajectoryPoint:
        return self.points[index]

    @property
    def foms(self) -> np.ndarray:
        return np.array([p.fom for p in self.points])

    @property
    def densities(self) -> list[np.ndarray]:
        return [p.density for p in self.points]

    def best(self) -> TrajectoryPoint:
        """The iterate with the highest figure of merit."""
        if not self.points:
            raise ValueError("trajectory is empty")
        return max(self.points, key=lambda p: p.fom)


class AdjointOptimizer:
    """Gradient-ascent optimizer (Adam) for :class:`InverseDesignProblem`.

    Parameters
    ----------
    problem:
        The inverse-design problem to maximize.
    learning_rate:
        Adam step size on the latent variables.
    beta_schedule:
        Optional mapping ``iteration -> binarization beta``; when provided the
        projection sharpness is ramped during the run (e.g. ``{0: 4, 20: 8,
        40: 16}``).
    """

    def __init__(
        self,
        problem: InverseDesignProblem,
        learning_rate: float = 0.1,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        beta_schedule: dict[int, float] | None = None,
    ):
        if learning_rate <= 0:
            raise ValueError(f"learning rate must be positive, got {learning_rate}")
        self.problem = problem
        self.learning_rate = float(learning_rate)
        self.adam_betas = betas
        self.adam_eps = eps
        self.beta_schedule = dict(beta_schedule or {})

    def run(
        self,
        theta0: np.ndarray | None = None,
        iterations: int = 50,
        callback=None,
        verbose: bool = False,
    ) -> OptimizationTrajectory:
        """Run the optimization and return the recorded trajectory.

        Parameters
        ----------
        theta0:
            Initial latent variables (defaults to the "waveguide" initialization).
        iterations:
            Number of gradient steps.
        callback:
            Optional ``callback(iteration, ProblemEvaluation)`` invoked at every
            iteration (used by the dataset sampler to harvest designs).
        verbose:
            Print the figure of merit every few iterations.
        """
        theta = (
            np.array(theta0, dtype=float, copy=True)
            if theta0 is not None
            else self.problem.initial_theta()
        )
        # Fresh run: previous-run fields are stale warm starts.  One workspace
        # is then reused across all iterations of this run, so consecutive
        # evaluations seed each other's Krylov solves.
        reset_workspace = getattr(self.problem, "reset_workspace", None)
        if reset_workspace is not None:
            reset_workspace()
        first_moment = np.zeros_like(theta)
        second_moment = np.zeros_like(theta)
        beta1, beta2 = self.adam_betas
        trajectory = OptimizationTrajectory()

        for iteration in range(iterations):
            if iteration in self.beta_schedule:
                self.problem.set_binarization_beta(self.beta_schedule[iteration])

            evaluation: ProblemEvaluation = self.problem.evaluate(theta, compute_gradient=True)
            trajectory.append(
                TrajectoryPoint(
                    iteration=iteration,
                    fom=evaluation.fom,
                    density=evaluation.density.copy(),
                    theta=theta.copy(),
                    transmissions=dict(evaluation.transmissions),
                )
            )
            if callback is not None:
                callback(iteration, evaluation)
            if verbose and iteration % max(1, iterations // 10) == 0:
                print(f"[invdes] iter {iteration:3d}  FoM = {evaluation.fom:.4f}")

            gradient = evaluation.grad_theta
            if gradient is None:
                raise RuntimeError("problem returned no gradient")
            # Adam ascent step (maximize the figure of merit).
            first_moment = beta1 * first_moment + (1 - beta1) * gradient
            second_moment = beta2 * second_moment + (1 - beta2) * gradient**2
            m_hat = first_moment / (1 - beta1 ** (iteration + 1))
            v_hat = second_moment / (1 - beta2 ** (iteration + 1))
            theta = theta + self.learning_rate * m_hat / (np.sqrt(v_hat) + self.adam_eps)

        # Record the final state reached after the last update.
        final = self.problem.evaluate(theta, compute_gradient=False)
        trajectory.append(
            TrajectoryPoint(
                iteration=iterations,
                fom=final.fom,
                density=final.density.copy(),
                theta=theta.copy(),
                transmissions=dict(final.transmissions),
            )
        )
        return trajectory
