"""Per-excitation adjoint gradients.

:func:`evaluate_spec` runs the forward simulation for one
:class:`~repro.devices.base.TargetSpec`, evaluates the objective, performs the
adjoint solve and chains the permittivity gradient back to the design density.
The actual field solves go through a :class:`FieldBackend`, so the same code
path serves the numerical solver and the neural surrogates of Table II /
Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.devices.base import Device, TargetSpec
from repro.fdfd.simulation import Simulation, SimulationResult
from repro.invdes.objectives import CompositeObjective, objective_for_spec


class FieldBackend:
    """Interface for forward/adjoint field computation.

    The numerical backend delegates to the sparse FDFD solver; the neural
    backend in :mod:`repro.surrogate` predicts the fields with a trained
    model.  Both return grid-shaped complex arrays.
    """

    def forward_fields(self, sim: Simulation, spec: TargetSpec) -> SimulationResult:
        raise NotImplementedError

    def adjoint_field(
        self, sim: Simulation, spec: TargetSpec, adjoint_source: np.ndarray
    ) -> np.ndarray:
        raise NotImplementedError


class NumericalFieldBackend(FieldBackend):
    """Exact fields from the sparse FDFD solver (the default backend)."""

    def forward_fields(self, sim: Simulation, spec: TargetSpec) -> SimulationResult:
        return sim.solve(
            source_port=spec.source_port,
            mode_index=spec.source_mode,
            monitor_ports=spec.monitored_ports(),
        )

    def adjoint_field(
        self, sim: Simulation, spec: TargetSpec, adjoint_source: np.ndarray
    ) -> np.ndarray:
        return sim.solver.solve_adjoint(sim.eps_r, adjoint_source)


@dataclass
class SpecEvaluation:
    """Result of evaluating one target spec at one design density."""

    spec: TargetSpec
    objective_value: float
    grad_density: np.ndarray
    transmissions: dict[str, float] = field(default_factory=dict)
    result: SimulationResult | None = None
    adjoint_field: np.ndarray | None = None

    @property
    def weighted_value(self) -> float:
        return self.spec.weight * self.objective_value


def evaluate_spec(
    device: Device,
    density: np.ndarray,
    spec: TargetSpec,
    backend: FieldBackend | None = None,
    objective: CompositeObjective | None = None,
    compute_gradient: bool = True,
    eps_postprocess=None,
    wavelength_shift: float = 0.0,
) -> SpecEvaluation:
    """Objective value and density gradient for a single excitation spec.

    Parameters
    ----------
    device:
        The benchmark device providing geometry and ports.
    density:
        Design density in ``[0, 1]`` on the design region.
    spec:
        Excitation and routing target.
    backend:
        Field backend (numerical FDFD by default).
    objective:
        Objective functional; defaults to the mode-transmission objective built
        from the spec's port weights.
    compute_gradient:
        If False, skip the adjoint solve (used for dataset labelling where only
        the forward quantities are needed).
    eps_postprocess:
        Optional callable applied to the permittivity before simulation
        (temperature drift of variation-aware corners).
    wavelength_shift:
        Added to the spec wavelength (laser drift corner).
    """
    backend = backend or NumericalFieldBackend()
    objective = objective or objective_for_spec(spec)

    eps = device.eps_with_design(np.asarray(density, dtype=float))
    eps = device.apply_state(eps, spec.state)
    if eps_postprocess is not None:
        eps = eps_postprocess(eps)
    wavelength = spec.wavelength + wavelength_shift
    sim = Simulation(device.grid, eps, wavelength, device.geometry.ports)

    result = backend.forward_fields(sim, spec)
    value, adjoint_source = objective.value_and_adjoint_source(sim, result)

    if not compute_gradient:
        return SpecEvaluation(
            spec=spec,
            objective_value=float(value),
            grad_density=np.zeros(device.design_shape),
            transmissions=dict(result.transmissions),
            result=result,
        )

    lam = backend.adjoint_field(sim, spec, adjoint_source)
    grad_eps = sim.solver.permittivity_gradient(result.ez, lam)
    # Chain rule: eps = eps_clad + (eps_core - eps_clad) * rho inside the design
    # region (device states add permittivity independently of rho).
    scale = device.geometry.eps_core - device.geometry.eps_clad
    grad_density = grad_eps[device.geometry.design_slice] * scale
    return SpecEvaluation(
        spec=spec,
        objective_value=float(value),
        grad_density=grad_density,
        transmissions=dict(result.transmissions),
        result=result,
        adjoint_field=lam,
    )


def evaluate_all_specs(
    device: Device,
    density: np.ndarray,
    backend: FieldBackend | None = None,
    compute_gradient: bool = True,
    eps_postprocess=None,
    wavelength_shift: float = 0.0,
) -> tuple[float, np.ndarray, list[SpecEvaluation]]:
    """Weighted objective and gradient accumulated over all device specs.

    The normalization matches :meth:`repro.devices.base.Device.figure_of_merit`:
    the weighted sum is divided by the total positive weight so a perfect
    router scores 1.
    """
    evaluations = []
    total = 0.0
    weight_norm = 0.0
    grad = np.zeros(device.design_shape)
    for spec in device.specs:
        evaluation = evaluate_spec(
            device,
            density,
            spec,
            backend=backend,
            compute_gradient=compute_gradient,
            eps_postprocess=eps_postprocess,
            wavelength_shift=wavelength_shift,
        )
        evaluations.append(evaluation)
        total += spec.weight * evaluation.objective_value
        grad += spec.weight * evaluation.grad_density
        weight_norm += spec.weight * max(
            sum(w for w in spec.port_weights.values() if w > 0), 1e-12
        )
    if weight_norm > 0:
        total /= weight_norm
        grad /= weight_norm
    return float(total), grad, evaluations
