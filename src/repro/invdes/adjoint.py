"""Per-excitation adjoint gradients on top of the solver-engine layer.

:func:`evaluate_spec` runs the forward simulation for one
:class:`~repro.devices.base.TargetSpec`, evaluates the objective, performs the
adjoint solve and chains the permittivity gradient back to the design density.
:func:`evaluate_specs` is the batched form: specs sharing a simulation
(same wavelength and device state) are grouped onto one
:class:`~repro.fdfd.simulation.Simulation`, their forward solves go through
one :meth:`~repro.fdfd.simulation.Simulation.solve_multi` call and their
adjoint solves through one batched back-substitution — the operator is
factorized exactly once per design and reused for forward, adjoint and
normalization solves via the shared factorization cache.

The actual field solves go through a :class:`FieldBackend`, so the same code
path serves the numerical solver engines (direct, iterative) and the neural
surrogates of Table II / Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.constants import wavelength_to_omega
from repro.devices.base import Device, TargetSpec
from repro.fdfd.engine import SolverEngine, SolveWorkspace, resolve_engine
from repro.fdfd.simulation import ExcitationSpec, Simulation, SimulationResult
from repro.invdes.objectives import CompositeObjective, objective_for_spec


class FieldBackend:
    """Interface for forward/adjoint field computation.

    The numerical backend delegates to a solver engine; the neural backend in
    :mod:`repro.surrogate` predicts the fields with a trained model.  Both
    return grid-shaped complex arrays.  The batched entry points default to a
    sequential loop so simple backends only implement the per-spec methods.
    """

    #: Engine (or engine name) simulations built for this backend should use.
    engine: SolverEngine | str | None = None

    def forward_fields(self, sim: Simulation, spec: TargetSpec) -> SimulationResult:
        raise NotImplementedError

    def adjoint_field(
        self, sim: Simulation, spec: TargetSpec, adjoint_source: np.ndarray
    ) -> np.ndarray:
        raise NotImplementedError

    # -- batched entry points (override for factorize-once behaviour) -----------
    def forward_results(
        self, sim: Simulation, specs: list[TargetSpec]
    ) -> list[SimulationResult]:
        return [self.forward_fields(sim, spec) for spec in specs]

    def adjoint_fields(
        self, sim: Simulation, specs: list[TargetSpec], adjoint_sources: list[np.ndarray]
    ) -> list[np.ndarray]:
        return [
            self.adjoint_field(sim, spec, source)
            for spec, source in zip(specs, adjoint_sources)
        ]


class NumericalFieldBackend(FieldBackend):
    """Exact or iterative fields from a solver engine (the default backend).

    Parameters
    ----------
    engine:
        Solver engine or engine name forwarded to every
        :class:`~repro.fdfd.simulation.Simulation` this backend evaluates;
        None selects the exact direct engine.  Registry names are resolved
        once at construction so stateful engines (the recycled tier's
        reference factorizations, iteration counters) persist across the
        Simulations built per optimizer iteration instead of being recreated
        with each one.
    workspace:
        Optional :class:`~repro.fdfd.engine.SolveWorkspace` threading
        previous-iteration forward and adjoint fields into the next solve as
        Krylov initial guesses, keyed by ``(spec, wavelength, device state)``.
        Only consulted when the engine advertises ``supports_warm_start``.
    """

    def __init__(
        self,
        engine: SolverEngine | str | None = None,
        workspace: SolveWorkspace | None = None,
    ):
        self.engine = resolve_engine(engine) if isinstance(engine, str) else engine
        self.workspace = workspace

    # -- warm-start plumbing -----------------------------------------------------
    def _active_workspace(self, sim: Simulation) -> SolveWorkspace | None:
        """The workspace, when the simulation's engine can profit from it."""
        if self.workspace is None:
            return None
        if not getattr(sim.engine, "supports_warm_start", False):
            return None
        return self.workspace

    @staticmethod
    def _spec_key(kind: str, sim: Simulation, spec: TargetSpec) -> tuple:
        """Workspace key: one slot per (solve kind, spec, wavelength, state).

        ``sim.wavelength`` (not ``spec.wavelength``) so corner variants with a
        wavelength shift do not collide with the nominal run.
        """
        return (
            kind,
            spec.source_port,
            spec.source_mode,
            sim.wavelength,
            tuple(sorted(spec.state.items())),
        )

    def forward_fields(self, sim: Simulation, spec: TargetSpec) -> SimulationResult:
        return sim.solve(
            source_port=spec.source_port,
            mode_index=spec.source_mode,
            monitor_ports=spec.monitored_ports(),
        )

    def adjoint_field(
        self, sim: Simulation, spec: TargetSpec, adjoint_source: np.ndarray
    ) -> np.ndarray:
        return sim.solver.solve_adjoint(
            sim.eps_r, adjoint_source, fingerprint=sim._current_fingerprint()
        )

    def forward_results(
        self, sim: Simulation, specs: list[TargetSpec]
    ) -> list[SimulationResult]:
        excitations = [
            ExcitationSpec(
                source_port=spec.source_port,
                mode_index=spec.source_mode,
                monitor_ports=tuple(spec.monitored_ports()),
            )
            for spec in specs
        ]
        workspace = self._active_workspace(sim)
        guess_keys = None
        if workspace is not None:
            guess_keys = [self._spec_key("forward", sim, spec) for spec in specs]
        return sim.solve_multi(excitations, workspace=workspace, guess_keys=guess_keys)

    def adjoint_fields(
        self, sim: Simulation, specs: list[TargetSpec], adjoint_sources: list[np.ndarray]
    ) -> list[np.ndarray]:
        workspace = self._active_workspace(sim)
        x0 = None
        keys = None
        if workspace is not None:
            keys = [self._spec_key("adjoint", sim, spec) for spec in specs]
            x0 = workspace.guess_stack(keys, sim.grid.shape)
        lams = sim.solver.solve_adjoint_batch(
            sim.eps_r, adjoint_sources, fingerprint=sim._current_fingerprint(), x0=x0
        )
        if workspace is not None:
            for key, lam in zip(keys, lams):
                workspace.store(key, lam)
        return lams


@dataclass
class SpecEvaluation:
    """Result of evaluating one target spec at one design density."""

    spec: TargetSpec
    objective_value: float
    grad_density: np.ndarray
    transmissions: dict[str, float] = field(default_factory=dict)
    result: SimulationResult | None = None
    adjoint_field: np.ndarray | None = None
    #: Convergence telemetry of the Kerr fixed point (nonlinear path only).
    nonlinear_stats: "object | None" = None

    @property
    def weighted_value(self) -> float:
        return self.spec.weight * self.objective_value


def simulation_group_key(spec: TargetSpec) -> tuple:
    """Specs sharing this key can share one Simulation (one operator)."""
    return (spec.wavelength, tuple(sorted(spec.state.items())))


def evaluate_specs(
    device: Device,
    density: np.ndarray,
    specs: list[TargetSpec] | None = None,
    backend: FieldBackend | None = None,
    objectives: dict[int, CompositeObjective] | None = None,
    compute_gradient: bool = True,
    eps_postprocess=None,
    wavelength_shift: float = 0.0,
    wavelengths=None,
    nonlinearity=None,
) -> list[SpecEvaluation]:
    """Objective values and density gradients for many specs, batched.

    Specs are grouped by ``(wavelength, device state)``; each group shares one
    :class:`Simulation` (one factorization), one batched forward solve and one
    batched adjoint solve.  Results are returned in the order of ``specs``.

    Parameters
    ----------
    device:
        The benchmark device providing geometry and ports.
    density:
        Design density in ``[0, 1]`` on the design region.
    specs:
        Excitation specs to evaluate (``device.specs`` by default).
    backend:
        Field backend (numerical, engine-backed by default).
    objectives:
        Optional per-spec objective overrides keyed by position in ``specs``;
        unlisted specs get the mode-transmission objective built from their
        port weights.
    compute_gradient:
        If False, skip the adjoint solves (used for dataset labelling where
        only the forward quantities are needed).
    eps_postprocess:
        Optional callable applied to the permittivity before simulation
        (temperature drift of variation-aware corners).
    wavelength_shift:
        Added to every spec wavelength (laser drift corner).
    wavelengths:
        Broadband mode: evaluate every spec at each of these wavelengths
        (overriding the specs' own) and return the evaluations
        wavelength-major — ``[eval(w0, spec0), eval(w0, spec1), ...,
        eval(w1, spec0), ...]`` — with each evaluation's ``spec`` carrying
        its wavelength.  Forward-only (``compute_gradient`` must be False).
        With a time-domain engine (``"fdtd"``) all wavelengths of an
        excitation come from *one* pulsed run
        (:class:`repro.fdtd.broadband.FdtdSimulation`); any other engine
        falls back to one frequency-domain solve per wavelength, which is
        how the FDTD labels are cross-validated.
    nonlinearity:
        A :class:`~repro.fdfd.nonlinear.KerrNonlinearity`: converge each spec
        as a Kerr fixed point (``eps_eff = eps + chi3 |E|^2``) instead of a
        linear solve.  The chi3 map comes from
        :meth:`~repro.devices.base.Device.chi3_map` and the injected power is
        ``spec.state["power"] * nonlinearity.source_scale`` (``power``
        defaults to 1).  Gradients go *through* the converged fixed point via
        the implicit-function adjoint; each evaluation carries its
        :class:`~repro.fdfd.nonlinear.NonlinearStats`.  Engine-backed only —
        the inner solves ride ``backend.engine`` through the ordinary
        registry (``"recycled"`` makes the outer iterations diagonal-update
        cheap); neural field backends are not supported.
    """
    backend = backend or NumericalFieldBackend()
    if specs is None:
        specs = device.specs
    if not specs:
        return []
    if nonlinearity is not None:
        if wavelengths is not None:
            raise ValueError("broadband and nonlinear evaluation cannot be combined")
        return _evaluate_specs_nonlinear(
            device,
            np.asarray(density, dtype=float),
            list(specs),
            backend,
            objectives,
            compute_gradient,
            eps_postprocess,
            wavelength_shift,
            nonlinearity,
        )
    if wavelengths is not None:
        if compute_gradient:
            raise ValueError(
                "broadband evaluation is forward-only; pass compute_gradient=False"
            )
        return _evaluate_specs_broadband(
            device,
            density,
            list(specs),
            backend,
            objectives,
            eps_postprocess,
            wavelength_shift,
            [float(w) for w in np.atleast_1d(wavelengths)],
        )
    density = np.asarray(density, dtype=float)

    groups: dict[tuple, list[int]] = {}
    for index, spec in enumerate(specs):
        groups.setdefault(simulation_group_key(spec), []).append(index)

    evaluations: list[SpecEvaluation | None] = [None] * len(specs)
    scale = device.geometry.eps_core - device.geometry.eps_clad
    for indices in groups.values():
        group_specs = [specs[i] for i in indices]
        reference = group_specs[0]

        eps = device.eps_with_design(density)
        eps = device.apply_state(eps, reference.state)
        if eps_postprocess is not None:
            eps = eps_postprocess(eps)
        wavelength = reference.wavelength + wavelength_shift
        sim = Simulation(
            device.grid, eps, wavelength, device.geometry.ports, engine=backend.engine
        )

        results = backend.forward_results(sim, group_specs)

        values = []
        adjoint_sources = []
        for position, spec, result in zip(indices, group_specs, results):
            objective = None if objectives is None else objectives.get(position)
            objective = objective or objective_for_spec(spec)
            value, adjoint_source = objective.value_and_adjoint_source(sim, result)
            values.append(float(value))
            adjoint_sources.append(adjoint_source)

        if not compute_gradient:
            for position, spec, result, value in zip(indices, group_specs, results, values):
                evaluations[position] = SpecEvaluation(
                    spec=spec,
                    objective_value=value,
                    grad_density=np.zeros(device.design_shape),
                    transmissions=dict(result.transmissions),
                    result=result,
                )
            continue

        lams = backend.adjoint_fields(sim, group_specs, adjoint_sources)
        for position, spec, result, value, lam in zip(
            indices, group_specs, results, values, lams
        ):
            grad_eps = sim.solver.permittivity_gradient(result.ez, lam)
            # Chain rule: eps = eps_clad + (eps_core - eps_clad) * rho inside the
            # design region (device states add permittivity independently of rho).
            grad_density = grad_eps[device.geometry.design_slice] * scale
            evaluations[position] = SpecEvaluation(
                spec=spec,
                objective_value=value,
                grad_density=grad_density,
                transmissions=dict(result.transmissions),
                result=result,
                adjoint_field=lam,
            )
    return evaluations


def _evaluate_specs_nonlinear(
    device: Device,
    density: np.ndarray,
    specs: list[TargetSpec],
    backend: FieldBackend,
    objectives: dict[int, CompositeObjective] | None,
    compute_gradient: bool,
    eps_postprocess,
    wavelength_shift: float,
    nonlinearity,
) -> list[SpecEvaluation]:
    """Kerr fixed-point evaluations of every spec (see ``nonlinearity=``).

    The grouping mirrors the linear path — one
    :class:`~repro.fdfd.nonlinear.NonlinearSimulation` per ``(wavelength,
    device state)`` — but each excitation is its own fixed point (no
    superposition), and a ``power`` state additionally scales the injected
    source, so power-sweep specs of the Kerr zoo devices land in distinct
    groups with distinct converged permittivities.
    """
    from repro.fdfd.nonlinear import NonlinearSimulation

    if not isinstance(backend, NumericalFieldBackend):
        raise ValueError(
            "nonlinear evaluation drives the engine seam directly; only the "
            "numerical field backend is supported"
        )
    engine = backend.engine
    chi3_map = device.chi3_map(nonlinearity.chi3)

    groups: dict[tuple, list[int]] = {}
    for index, spec in enumerate(specs):
        groups.setdefault(simulation_group_key(spec), []).append(index)

    evaluations: list[SpecEvaluation | None] = [None] * len(specs)
    scale = device.geometry.eps_core - device.geometry.eps_clad
    for indices in groups.values():
        group_specs = [specs[i] for i in indices]
        reference = group_specs[0]

        eps = device.eps_with_design(density)
        eps = device.apply_state(eps, reference.state)
        if eps_postprocess is not None:
            eps = eps_postprocess(eps)
        wavelength = reference.wavelength + wavelength_shift
        power = float(reference.state.get("power", 1.0))
        sim = NonlinearSimulation.from_nonlinearity(
            device.grid,
            eps,
            wavelength,
            device.geometry.ports,
            chi3_map,
            nonlinearity,
            engine=engine,
            source_scale=power * nonlinearity.source_scale,
        )

        excitations = [
            ExcitationSpec(
                source_port=spec.source_port,
                mode_index=spec.source_mode,
                monitor_ports=tuple(spec.monitored_ports()),
            )
            for spec in group_specs
        ]
        results = sim.solve_multi(excitations)
        stats = list(sim.last_stats)

        for position, spec, result, stat in zip(indices, group_specs, results, stats):
            objective = None if objectives is None else objectives.get(position)
            objective = objective or objective_for_spec(spec)
            value, adjoint_source = objective.value_and_adjoint_source(sim, result)
            if compute_gradient:
                lam = sim.solve_adjoint(result.ez, adjoint_source)
                grad_eps = sim.solver.permittivity_gradient(result.ez, lam)
                # chi3 is a fixed material map of the device (not a function of
                # the density), so the linear chain rule is complete.
                grad_density = grad_eps[device.geometry.design_slice] * scale
            else:
                lam = None
                grad_density = np.zeros(device.design_shape)
            evaluations[position] = SpecEvaluation(
                spec=spec,
                objective_value=float(value),
                grad_density=grad_density,
                transmissions=dict(result.transmissions),
                result=result,
                adjoint_field=lam,
                nonlinear_stats=stat,
            )
    return evaluations


class _BroadbandObjectiveContext:
    """Duck-typed :class:`Simulation` stand-in for objective evaluation.

    Objectives read ``ports``, ``eps_r``, ``grid`` and ``omega`` — and, only
    for the flux kind, ``solver`` for its derivative operators.  Building a
    real Simulation per extraction wavelength would eagerly assemble FDFD
    operators the default mode-overlap objectives never touch; the stand-in
    defers that to first use.
    """

    def __init__(self, grid, eps_r, wavelength: float, ports: dict):
        self.grid = grid
        self.eps_r = eps_r
        self.wavelength = float(wavelength)
        self.omega = wavelength_to_omega(self.wavelength)
        self.ports = dict(ports)
        self._solver = None

    @property
    def solver(self):
        if self._solver is None:
            from repro.fdfd.solver import FdfdSolver

            self._solver = FdfdSolver(self.grid, self.omega)
        return self._solver


def _evaluate_specs_broadband(
    device: Device,
    density: np.ndarray,
    specs: list[TargetSpec],
    backend: FieldBackend,
    objectives: dict[int, CompositeObjective] | None,
    eps_postprocess,
    wavelength_shift: float,
    wavelengths: list[float],
) -> list[SpecEvaluation]:
    """Forward-only evaluations of every spec at every wavelength.

    See :func:`evaluate_specs` (``wavelengths=``) for the contract.  The
    time-domain fast path activates only for an explicitly selected ``fdtd``
    engine; everything else loops per wavelength over the standard
    frequency-domain path, so the two tiers are drop-in comparable.
    """
    if not wavelengths:
        return []
    engine = backend.engine
    if isinstance(engine, str):
        engine = resolve_engine(engine)
    from repro.fdtd.engine import FdtdFrequencyEngine

    if not isinstance(engine, FdtdFrequencyEngine):
        evaluations: list[SpecEvaluation] = []
        for w in wavelengths:
            shifted = [replace(spec, wavelength=w) for spec in specs]
            evaluations.extend(
                evaluate_specs(
                    device,
                    density,
                    specs=shifted,
                    backend=backend,
                    objectives=objectives,
                    compute_gradient=False,
                    eps_postprocess=eps_postprocess,
                    wavelength_shift=wavelength_shift,
                )
            )
        return evaluations

    from repro.fdtd.broadband import FdtdSimulation

    density = np.asarray(density, dtype=float)
    run_wavelengths = [w + wavelength_shift for w in wavelengths]

    # One pulsed run covers every wavelength, so grouping only splits on what
    # changes the time-domain problem: the excitation and the device state.
    groups: dict[tuple, list[int]] = {}
    for index, spec in enumerate(specs):
        key = (spec.source_port, spec.source_mode, tuple(sorted(spec.state.items())))
        groups.setdefault(key, []).append(index)

    results_by_spec: list[list[SimulationResult] | None] = [None] * len(specs)
    contexts_by_state: dict[tuple, list[_BroadbandObjectiveContext]] = {}
    for (source_port, source_mode, state_key), indices in groups.items():
        group_specs = [specs[i] for i in indices]
        reference = group_specs[0]
        eps = device.eps_with_design(density)
        eps = device.apply_state(eps, reference.state)
        if eps_postprocess is not None:
            eps = eps_postprocess(eps)
        monitor_ports: list[str] = []
        for spec in group_specs:
            for name in spec.monitored_ports():
                if name not in monitor_ports:
                    monitor_ports.append(name)
        sim = FdtdSimulation(
            device.grid,
            eps,
            run_wavelengths,
            device.geometry.ports,
            courant=engine.courant,
            tau_s=engine.tau_s,
            decay_tol=engine.decay_tol,
            max_steps=engine.max_steps,
            check_every=engine.check_every,
            precision=engine.precision,
        )
        group_results = sim.solve(
            source_port=source_port, mode_index=source_mode, monitor_ports=monitor_ports
        )
        if state_key not in contexts_by_state:
            contexts_by_state[state_key] = [
                _BroadbandObjectiveContext(device.grid, eps, w, sim.ports)
                for w in run_wavelengths
            ]
        for i in indices:
            results_by_spec[i] = group_results

    evaluations = []
    for k, w in enumerate(wavelengths):
        for index, spec in enumerate(specs):
            result = results_by_spec[index][k]
            context = contexts_by_state[tuple(sorted(spec.state.items()))][k]
            objective = None if objectives is None else objectives.get(index)
            objective = objective or objective_for_spec(spec)
            value, _ = objective.value_and_adjoint_source(context, result)
            evaluations.append(
                SpecEvaluation(
                    spec=replace(spec, wavelength=w),
                    objective_value=float(value),
                    grad_density=np.zeros(device.design_shape),
                    transmissions=dict(result.transmissions),
                    result=result,
                )
            )
    return evaluations


def evaluate_spec(
    device: Device,
    density: np.ndarray,
    spec: TargetSpec,
    backend: FieldBackend | None = None,
    objective: CompositeObjective | None = None,
    compute_gradient: bool = True,
    eps_postprocess=None,
    wavelength_shift: float = 0.0,
    nonlinearity=None,
) -> SpecEvaluation:
    """Objective value and density gradient for a single excitation spec.

    Thin wrapper over :func:`evaluate_specs`; forward and adjoint still share
    one factorization through the engine cache.
    """
    return evaluate_specs(
        device,
        density,
        specs=[spec],
        backend=backend,
        objectives={0: objective} if objective is not None else None,
        compute_gradient=compute_gradient,
        eps_postprocess=eps_postprocess,
        wavelength_shift=wavelength_shift,
        nonlinearity=nonlinearity,
    )[0]


def evaluate_all_specs(
    device: Device,
    density: np.ndarray,
    backend: FieldBackend | None = None,
    compute_gradient: bool = True,
    eps_postprocess=None,
    wavelength_shift: float = 0.0,
    nonlinearity=None,
) -> tuple[float, np.ndarray, list[SpecEvaluation]]:
    """Weighted objective and gradient accumulated over all device specs.

    All specs are evaluated through the batched :func:`evaluate_specs` path.
    The normalization matches :meth:`repro.devices.base.Device.figure_of_merit`:
    the weighted sum is divided by the total positive weight so a perfect
    router scores 1.
    """
    evaluations = evaluate_specs(
        device,
        density,
        backend=backend,
        compute_gradient=compute_gradient,
        eps_postprocess=eps_postprocess,
        wavelength_shift=wavelength_shift,
        nonlinearity=nonlinearity,
    )
    total = 0.0
    weight_norm = 0.0
    grad = np.zeros(device.design_shape)
    for evaluation in evaluations:
        spec = evaluation.spec
        total += spec.weight * evaluation.objective_value
        grad += spec.weight * evaluation.grad_density
        weight_norm += spec.weight * max(
            sum(w for w in spec.port_weights.values() if w > 0), 1e-12
        )
    if weight_norm > 0:
        total /= weight_norm
        grad /= weight_norm
    return float(total), grad, evaluations
