"""Variation-aware (robust) inverse design.

The robust problem evaluates the figure of merit over a set of fabrication and
operating corners and maximizes the weighted expectation, so the optimized
design stays inside a manufacturable, operating-condition-tolerant subspace.
"""

from __future__ import annotations

import numpy as np

from repro.fabrication.corners import FabricationCorner, standard_corners
from repro.invdes.problem import InverseDesignProblem, ProblemEvaluation
from repro.parametrization.transforms import TransformPipeline


class RobustInverseDesignProblem:
    """Expected figure of merit over fabrication/operation corners.

    Parameters
    ----------
    base_problem:
        The nominal :class:`InverseDesignProblem` (its parametrization and
        transform pipeline are shared by all corners).
    corners:
        Corner list; defaults to :func:`repro.fabrication.corners.standard_corners`.
    """

    def __init__(
        self,
        base_problem: InverseDesignProblem,
        corners: list[FabricationCorner] | None = None,
    ):
        self.base_problem = base_problem
        self.corners = list(corners) if corners is not None else standard_corners()
        if not self.corners:
            raise ValueError("at least one corner is required")
        self._corner_problems = [self._make_corner_problem(c) for c in self.corners]

    def _make_corner_problem(self, corner: FabricationCorner) -> InverseDesignProblem:
        base = self.base_problem
        transforms = TransformPipeline(
            list(base.transforms) + list(corner.pattern_transforms)
        )
        backend = base.backend
        # Corners share the base backend's *engine* (factorizations and
        # recycling references are reusable physics) but must not share its
        # warm-start workspace: every corner simulates a different
        # permittivity under the same spec keys, and mixed-corner fields make
        # worse-than-cold initial guesses.  Rebuild the backend with a
        # per-corner workspace when possible.
        from repro.invdes.adjoint import NumericalFieldBackend

        if isinstance(backend, NumericalFieldBackend):
            backend = NumericalFieldBackend(engine=backend.engine)
        return InverseDesignProblem(
            device=base.device,
            parametrization=base.parametrization,
            transforms=transforms,
            backend=backend,
            eps_postprocess=corner.temperature_drift.apply_eps
            if corner.temperature_drift.delta_kelvin
            else None,
            wavelength_shift=corner.wavelength_drift.delta_um,
        )

    # -- API mirroring InverseDesignProblem ------------------------------------------
    @property
    def device(self):
        return self.base_problem.device

    def initial_theta(self, kind: str = "waveguide", rng=None) -> np.ndarray:
        return self.base_problem.initial_theta(kind=kind, rng=rng)

    def set_binarization_beta(self, beta: float) -> None:
        for problem in self._corner_problems:
            problem.set_binarization_beta(beta)
        self.base_problem.set_binarization_beta(beta)

    def reset_workspace(self) -> None:
        """Drop warm-start state of every corner problem (and the nominal one)."""
        for problem in self._corner_problems:
            problem.reset_workspace()
        self.base_problem.reset_workspace()

    def corner_foms(self, theta: np.ndarray) -> dict[str, float]:
        """Figure of merit of every corner (no gradients)."""
        return {
            corner.name: problem.figure_of_merit(theta)
            for corner, problem in zip(self.corners, self._corner_problems)
        }

    def evaluate(self, theta: np.ndarray, compute_gradient: bool = True) -> ProblemEvaluation:
        """Weighted-average evaluation across all corners."""
        total_weight = sum(c.weight for c in self.corners)
        fom = 0.0
        grad = None
        transmissions: dict[str, float] = {}
        spec_evaluations = []
        density = None
        for corner, problem in zip(self.corners, self._corner_problems):
            evaluation = problem.evaluate(theta, compute_gradient=compute_gradient)
            share = corner.weight / total_weight
            fom += share * evaluation.fom
            if compute_gradient:
                contribution = share * evaluation.grad_theta
                grad = contribution if grad is None else grad + contribution
            for key, value in evaluation.transmissions.items():
                transmissions[f"{corner.name}:{key}"] = value
            spec_evaluations.extend(evaluation.spec_evaluations)
            if corner.name == "nominal" or density is None:
                density = evaluation.density
        return ProblemEvaluation(
            fom=float(fom),
            grad_theta=grad,
            density=density,
            transmissions=transmissions,
            spec_evaluations=spec_evaluations,
        )

    def value_and_grad(self, theta: np.ndarray) -> tuple[float, np.ndarray]:
        evaluation = self.evaluate(theta, compute_gradient=True)
        return evaluation.fom, evaluation.grad_theta

    def figure_of_merit(self, theta: np.ndarray) -> float:
        return self.evaluate(theta, compute_gradient=False).fom
