"""The inverse-design problem: latent variables -> figure of merit + gradient.

:class:`InverseDesignProblem` chains together

1. the design parametrization (density or level-set),
2. the differentiable transform pipeline (blur, symmetry, binarization,
   lithography, ...),
3. the device permittivity assembly, and
4. the FDFD (or neural) forward/adjoint solves,

exposing a single ``value_and_grad(theta)`` for the optimizer.  Steps 1-2 are
differentiated by the autograd engine; steps 3-4 by the analytic adjoint
method; the two are glued by seeding the autograd backward pass with the
adjoint gradient with respect to the projected density.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.autograd.tensor import Tensor
from repro.devices.base import Device
from repro.fdfd.engine import SolveWorkspace
from repro.invdes.adjoint import (
    FieldBackend,
    NumericalFieldBackend,
    SpecEvaluation,
    evaluate_all_specs,
)
from repro.parametrization.parametrization import DensityParametrization
from repro.parametrization.transforms import (
    BinarizationProjection,
    BlurTransform,
    TransformPipeline,
)


@dataclass
class ProblemEvaluation:
    """One evaluation of the problem at a latent design point."""

    fom: float
    grad_theta: np.ndarray | None
    density: np.ndarray
    transmissions: dict[str, float] = field(default_factory=dict)
    spec_evaluations: list[SpecEvaluation] = field(default_factory=list)


class InverseDesignProblem:
    """Adjoint inverse-design problem for one benchmark device.

    Parameters
    ----------
    device:
        Benchmark device to optimize.
    parametrization:
        Latent-variable parametrization; defaults to a pixel-wise density
        parametrization of the design region.
    transforms:
        Differentiable transform pipeline applied to the density.  Defaults to
        sub-pixel blur followed by a tanh binarization projection (the standard
        fabrication-friendly chain); pass an empty pipeline to disable.
    backend:
        Field backend (numerical FDFD by default; a neural surrogate backend
        can be plugged in for AI-driven design).
    engine:
        Solver engine or engine name (``"direct"``, ``"iterative"``,
        ``"recycled"``, ...) for the default numerical backend — the one-line
        fidelity swap.  ``engine="recycled"`` is the optimization-loop tier:
        consecutive iterations recycle the previous factorization as a Krylov
        preconditioner instead of refactorizing.  Ignored when an explicit
        ``backend`` is given.
    workspace:
        Optional :class:`~repro.fdfd.engine.SolveWorkspace`.  By default the
        problem creates one and shares it with the backend, so warm-startable
        engines seed every solve with the previous iteration's fields.  If the
        given backend already carries a workspace (e.g. corner problems built
        around a shared nominal backend), that one is adopted instead.
    eps_postprocess, wavelength_shift:
        Hooks used by the variation-aware wrapper to simulate corners.
    nonlinearity:
        Optional :class:`~repro.fdfd.nonlinear.KerrNonlinearity`: every
        forward solve converges the Kerr fixed point and gradients flow
        through it (the nonlinear-device optimization path); None keeps the
        linear solves.
    """

    def __init__(
        self,
        device: Device,
        parametrization: DensityParametrization | None = None,
        transforms: TransformPipeline | None = None,
        backend: FieldBackend | None = None,
        engine=None,
        workspace: SolveWorkspace | None = None,
        eps_postprocess=None,
        wavelength_shift: float = 0.0,
        nonlinearity=None,
    ):
        explicit_workspace = workspace is not None
        self.workspace = workspace if explicit_workspace else SolveWorkspace()
        if backend is None:
            backend = NumericalFieldBackend(engine=engine, workspace=self.workspace)
        elif hasattr(backend, "workspace"):
            if not explicit_workspace and backend.workspace is not None:
                # The backend (shared with another problem) already threads a
                # workspace; adopt it so beta-schedule invalidation reaches it.
                self.workspace = backend.workspace
            else:
                # Attach ours — an explicitly passed workspace always wins, so
                # the caller's handle is the one the solves actually use.
                backend.workspace = self.workspace
        self.device = device
        self.parametrization = parametrization or DensityParametrization(device.design_shape)
        if transforms is None:
            transforms = TransformPipeline(
                [BlurTransform(radius_cells=1.5), BinarizationProjection(beta=8.0)]
            )
        self.transforms = transforms
        self.backend = backend
        self.eps_postprocess = eps_postprocess
        self.wavelength_shift = wavelength_shift
        self.nonlinearity = nonlinearity

    # -- parametrization chain ---------------------------------------------------------
    def initial_theta(self, kind: str = "waveguide", rng=None) -> np.ndarray:
        """Latent variables for one of the built-in initial densities."""
        from repro.invdes.initialization import initial_density

        density = initial_density(self.device, kind=kind, rng=rng)
        return self.parametrization.initial_theta(density)

    def density_from_theta(self, theta: np.ndarray) -> np.ndarray:
        """Projected density (after all transforms) for latent variables ``theta``."""
        tensor = self._density_tensor(Tensor(np.asarray(theta, dtype=float)))
        return np.clip(tensor.data, 0.0, 1.0)

    def _density_tensor(self, theta: Tensor) -> Tensor:
        return self.transforms(self.parametrization(theta))

    def set_binarization_beta(self, beta: float) -> None:
        """Update the sharpness of every binarization stage (beta schedule).

        A beta step moves the projected density (and hence the operator and
        its fields) discontinuously, so the warm-start workspace is
        invalidated: the stored previous-iteration fields would be poor
        initial guesses for the post-step solves.
        """
        changed = False
        for index, transform in enumerate(self.transforms):
            if isinstance(transform, BinarizationProjection):
                if transform.beta != float(beta):
                    changed = True
                self.transforms.replace(index, transform.with_beta(beta))
        if changed and self.workspace is not None:
            self.workspace.invalidate()

    def reset_workspace(self) -> None:
        """Drop warm-start state (called by the optimizer at the start of a run)."""
        if self.workspace is not None:
            self.workspace.invalidate()

    # -- evaluation ------------------------------------------------------------------------
    def evaluate(self, theta: np.ndarray, compute_gradient: bool = True) -> ProblemEvaluation:
        """Figure of merit (and gradient) at latent design ``theta``."""
        theta_tensor = Tensor(np.asarray(theta, dtype=float), requires_grad=compute_gradient)
        density_tensor = self._density_tensor(theta_tensor)
        density = np.clip(density_tensor.data, 0.0, 1.0)

        fom, grad_density, evaluations = evaluate_all_specs(
            self.device,
            density,
            backend=self.backend,
            compute_gradient=compute_gradient,
            eps_postprocess=self.eps_postprocess,
            wavelength_shift=self.wavelength_shift,
            nonlinearity=self.nonlinearity,
        )

        transmissions: dict[str, float] = {}
        for evaluation in evaluations:
            label = evaluation.spec.source_port
            if evaluation.spec.state:
                state = ",".join(f"{k}={v:g}" for k, v in sorted(evaluation.spec.state.items()))
                label = f"{label}[{state}]"
            if len(set(s.wavelength for s in self.device.specs)) > 1:
                label = f"{label}@{evaluation.spec.wavelength:g}um"
            if evaluation.spec.source_mode:
                label = f"{label}/m{evaluation.spec.source_mode}"
            for port, value in evaluation.transmissions.items():
                transmissions[f"{label}->{port}"] = value

        grad_theta = None
        if compute_gradient:
            density_tensor.backward(grad=grad_density)
            grad_theta = (
                theta_tensor.grad
                if theta_tensor.grad is not None
                else np.zeros_like(theta_tensor.data)
            )
        return ProblemEvaluation(
            fom=fom,
            grad_theta=grad_theta,
            density=density,
            transmissions=transmissions,
            spec_evaluations=evaluations,
        )

    def value_and_grad(self, theta: np.ndarray) -> tuple[float, np.ndarray]:
        """Convenience wrapper returning just ``(fom, d fom / d theta)``."""
        evaluation = self.evaluate(theta, compute_gradient=True)
        return evaluation.fom, evaluation.grad_theta

    def figure_of_merit(self, theta: np.ndarray) -> float:
        """Figure of merit without the adjoint solves."""
        return self.evaluate(theta, compute_gradient=False).fom
