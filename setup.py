"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that ``pip install -e .`` works in fully
offline environments (no build isolation, no ``wheel`` package): pip falls back
to the legacy ``setup.py develop`` path when no build backend is declared.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Reproduction of MAPS: Multi-Fidelity AI-Augmented Photonic Simulation "
        "and Inverse Design Infrastructure (DATE 2025)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy"],
)
